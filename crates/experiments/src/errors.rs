//! Accuracy studies: §4.1's uniform-data error claims, the density
//! sweep, the §4.2 non-uniform and real-data studies, and the
//! parameter-source ablation.

use crate::common::{
    build_tree, cardinality_grid, measured_params, observe_join, observe_join_with_params,
    profile_of, rel_err, run_counting_join, DEFAULT_DENSITY,
};
use crate::report::{int, pct, Report};
use sjcm_core::{join, DensitySurface, ModelConfig, TreeParams};
use sjcm_datagen::skewed::{gaussian_clusters, power_law, ClusterConfig};
use sjcm_datagen::tiger::{generate as tiger, TigerConfig};
use sjcm_datagen::uniform::{generate as uniform, UniformConfig};
use sjcm_geom::Rect;
use std::path::Path;

/// §4.1 claims (i)–(iii): relative errors on uniform data, with the DA
/// error split per tree (the query tree R2 should sit near 5%, the data
/// tree R1 in the 10–15% band).
pub fn errors_uniform(out: &Path, scale: f64) {
    errors_uniform_dim::<1>(out, scale, "errors_uniform_1d");
    errors_uniform_dim::<2>(out, scale, "errors_uniform_2d");
}

fn errors_uniform_dim<const DIM: usize>(out: &Path, scale: f64, name: &str) {
    let grid = cardinality_grid(scale);
    let cfg = ModelConfig::paper(DIM);
    // Independent data sets per role (see figures.rs for why).
    let datasets1: Vec<Vec<Rect<DIM>>> = grid
        .iter()
        .enumerate()
        .map(|(i, &n)| uniform::<DIM>(UniformConfig::new(n, DEFAULT_DENSITY, 3000 + i as u64)))
        .collect();
    let datasets2: Vec<Vec<Rect<DIM>>> = grid
        .iter()
        .enumerate()
        .map(|(i, &n)| uniform::<DIM>(UniformConfig::new(n, DEFAULT_DENSITY, 3500 + i as u64)))
        .collect();
    let trees1: Vec<_> = datasets1.iter().map(|d| build_tree(d)).collect();
    let trees2: Vec<_> = datasets2.iter().map(|d| build_tree(d)).collect();
    let mut report = Report::new(
        out,
        name,
        &[
            "combo",
            "err_NA",
            "err_DA",
            "err_DA_R1",
            "err_DA_R2",
            "R1_hits",
        ],
    );
    let mut worst_na = 0.0f64;
    let mut worst_da = 0.0f64;
    for (i, t1) in trees1.iter().enumerate() {
        for (j, t2) in trees2.iter().enumerate() {
            let prof1 = profile_of(&datasets1[i]);
            let prof2 = profile_of(&datasets2[j]);
            let result = run_counting_join(t1, t2);
            let p1 = TreeParams::<DIM>::from_data(prof1, &cfg);
            let p2 = TreeParams::<DIM>::from_data(prof2, &cfg);
            let (anal_da1, anal_da2) = join::join_cost_da_split(&p1, &p2);
            let err_na = rel_err(join::join_cost_na(&p1, &p2), result.na_total() as f64);
            let err_da = rel_err(anal_da1 + anal_da2, result.da_total() as f64);
            let err_da1 = rel_err(anal_da1, result.stats1.da_total() as f64);
            let err_da2 = rel_err(anal_da2, result.stats2.da_total() as f64);
            worst_na = worst_na.max(err_na);
            worst_da = worst_da.max(err_da);
            // Eq 9's unmodeled exception: path-buffer hits on the data
            // tree R1 during lockstep descent.
            let r1_hits = result.stats1.na_total() - result.stats1.da_total();
            report.row(&[
                &format!("{}K/{}K", grid[i] / 1000, grid[j] / 1000),
                &pct(err_na),
                &pct(err_da),
                &pct(err_da1),
                &pct(err_da2),
                &r1_hits,
            ]);
        }
    }
    report.finish();
    println!("worst NA error {} (paper claim: < 10%)", pct(worst_na));
    println!("worst DA error {} (paper claim: ~5–15%)", pct(worst_da));
}

/// Density sweep: fixed cardinality, D ∈ {0.2, 0.4, 0.6, 0.8} (§4's
/// "relevant conclusions also stand for varying density D").
pub fn density_sweep(out: &Path, scale: f64) {
    let n = (40_000.0 * scale).round().max(200.0) as usize;
    let mut report = Report::new(
        out,
        "density_sweep",
        &[
            "D", "exper_NA", "anal_NA", "err_NA", "exper_DA", "anal_DA", "err_DA",
        ],
    );
    for (i, d) in [0.2, 0.4, 0.6, 0.8].into_iter().enumerate() {
        let r1 = uniform::<2>(UniformConfig::new(n, d, 4000 + i as u64));
        let r2 = uniform::<2>(UniformConfig::new(n, d, 4100 + i as u64));
        let t1 = build_tree(&r1);
        let t2 = build_tree(&r2);
        let obs = observe_join(&t1, &t2, profile_of(&r1), profile_of(&r2));
        report.row(&[
            &format!("{d:.1}"),
            &obs.exper_na,
            &int(obs.anal_na),
            &pct(obs.err_na()),
            &obs.exper_da,
            &int(obs.anal_da),
            &pct(obs.err_da()),
        ]);
    }
    report.finish();
}

/// §4.2: non-uniform synthetic data. Compares the plain global-uniform
/// model against the local density-surface transformation; the paper
/// reports 10–20% error for the transformed model.
pub fn nonuniform(out: &Path, scale: f64) {
    let n = (30_000.0 * scale).round().max(200.0) as usize;
    let d = 0.4;
    let workloads: Vec<(&str, Vec<Rect<2>>, Vec<Rect<2>>)> = vec![
        (
            "clusters",
            gaussian_clusters::<2>(ClusterConfig::new(n, d, 5000)),
            gaussian_clusters::<2>(ClusterConfig::new(n, d, 5001)),
        ),
        (
            "clusters_tight",
            gaussian_clusters::<2>(
                ClusterConfig::new(n, d, 5002)
                    .with_clusters(4)
                    .with_sigma(0.03),
            ),
            gaussian_clusters::<2>(
                ClusterConfig::new(n, d, 5003)
                    .with_clusters(4)
                    .with_sigma(0.03),
            ),
        ),
        (
            "powerlaw",
            power_law::<2>(n, d, 2.0, 5004),
            power_law::<2>(n, d, 2.0, 5005),
        ),
        (
            "mixed",
            gaussian_clusters::<2>(ClusterConfig::new(n, d, 5006)),
            uniform::<2>(UniformConfig::new(n, d, 5007)),
        ),
    ];
    run_nonuniform_table(out, "nonuniform", &workloads);
}

/// §4.2's real-data study, on the TIGER-like substitution (see
/// DESIGN.md): road × hydro joins. The paper reports < 15% error.
pub fn real(out: &Path, scale: f64) {
    let n = (40_000.0 * scale).round().max(400.0) as usize;
    let workloads: Vec<(&str, Vec<Rect<2>>, Vec<Rect<2>>)> = vec![
        (
            "roads_x_hydro",
            tiger(TigerConfig::roads(n, 6000)),
            tiger(TigerConfig::hydro(n / 2, 6001)),
        ),
        (
            "roads_x_roads",
            tiger(TigerConfig::roads(n, 6002)),
            tiger(TigerConfig::roads(n, 6003)),
        ),
        (
            "hydro_x_hydro",
            tiger(TigerConfig::hydro(n / 2, 6004)),
            tiger(TigerConfig::hydro(n / 2, 6005)),
        ),
    ];
    run_nonuniform_table(out, "real_tigerlike", &workloads);
}

fn run_nonuniform_table(out: &Path, name: &str, workloads: &[(&str, Vec<Rect<2>>, Vec<Rect<2>>)]) {
    let cfg = ModelConfig::paper(2);
    let grid = 8;
    let mut report = Report::new(
        out,
        name,
        &[
            "workload",
            "exper_NA",
            "uniform_NA_err",
            "local_NA_err",
            "exper_DA",
            "uniform_DA_err",
            "local_DA_err",
        ],
    );
    for (label, r1, r2) in workloads {
        let t1 = build_tree(r1);
        let t2 = build_tree(r2);
        let prof1 = profile_of(r1);
        let prof2 = profile_of(r2);
        let result = run_counting_join(&t1, &t2);
        // Global-uniform estimates.
        let p1 = TreeParams::<2>::from_data(prof1, &cfg);
        let p2 = TreeParams::<2>::from_data(prof2, &cfg);
        let na_u = join::join_cost_na(&p1, &p2);
        let da_u = join::join_cost_da(&p1, &p2);
        // Local density-surface estimates.
        let s1 = DensitySurface::<2>::from_rects(r1, grid);
        let s2 = DensitySurface::<2>::from_rects(r2, grid);
        let (na_l, da_l) =
            sjcm_core::nonuniform::join_cost_nonuniform(prof1, &s1, prof2, &s2, &cfg);
        report.row(&[
            label,
            &result.na_total(),
            &pct(rel_err(na_u, result.na_total() as f64)),
            &pct(rel_err(na_l, result.na_total() as f64)),
            &result.da_total(),
            &pct(rel_err(da_u, result.da_total() as f64)),
            &pct(rel_err(da_l, result.da_total() as f64)),
        ]);
    }
    report.finish();
}

/// Per-level diagnostic: predicted (Eqs 2–5) vs measured tree parameters
/// for one representative tree per cardinality. Pinpoints *which* of the
/// parameter predictions drifts (node counts N_j, extents s_j, node
/// densities D_j).
pub fn params_diff(out: &Path, scale: f64) {
    let grid = cardinality_grid(scale);
    let cfg = ModelConfig::paper(2);
    let mut report = Report::new(
        out,
        "params_diff",
        &[
            "N", "j", "anal_Nj", "meas_Nj", "anal_sj", "meas_sj", "anal_Dj", "meas_Dj",
        ],
    );
    for (i, &n) in grid.iter().enumerate() {
        let rects = uniform::<2>(UniformConfig::new(n, DEFAULT_DENSITY, 7900 + i as u64));
        let tree = build_tree(&rects);
        let anal = TreeParams::<2>::from_data(profile_of(&rects), &cfg);
        let meas = measured_params(&tree);
        let levels = anal.height().max(meas.height());
        for j in 1..=levels {
            let a = (j <= anal.height()).then(|| anal.level(j));
            let m = (j <= meas.height()).then(|| meas.level(j));
            report.row(&[
                &format!("{}K", n / 1000),
                &j,
                &a.map_or("-".into(), |l| int(l.nodes)),
                &m.map_or("-".into(), |l| int(l.nodes)),
                &a.map_or("-".into(), |l| format!("{:.5}", l.extents[0])),
                &m.map_or("-".into(), |l| format!("{:.5}", l.extents[0])),
                &a.map_or("-".into(), |l| format!("{:.3}", l.density)),
                &m.map_or("-".into(), |l| format!("{:.3}", l.density)),
            ]);
        }
    }
    report.finish();
}

/// Parameter-source ablation: how much of the model error comes from
/// predicting tree parameters via Eqs 2–5 (data-only) versus from the
/// traversal model itself (measured parameters)?
pub fn param_source(out: &Path, scale: f64) {
    let grid = cardinality_grid(scale);
    let datasets1: Vec<Vec<Rect<2>>> = grid
        .iter()
        .enumerate()
        .map(|(i, &n)| uniform::<2>(UniformConfig::new(n, DEFAULT_DENSITY, 7000 + i as u64)))
        .collect();
    let datasets2: Vec<Vec<Rect<2>>> = grid
        .iter()
        .enumerate()
        .map(|(i, &n)| uniform::<2>(UniformConfig::new(n, DEFAULT_DENSITY, 7500 + i as u64)))
        .collect();
    let trees1: Vec<_> = datasets1.iter().map(|d| build_tree(d)).collect();
    let trees2: Vec<_> = datasets2.iter().map(|d| build_tree(d)).collect();
    let mut report = Report::new(
        out,
        "param_source",
        &[
            "combo",
            "err_NA_analytic",
            "err_NA_measured",
            "err_DA_analytic",
            "err_DA_measured",
        ],
    );
    for (i, t1) in trees1.iter().enumerate() {
        for (j, t2) in trees2.iter().enumerate() {
            if i > j {
                continue; // symmetric enough for the ablation
            }
            let prof1 = profile_of(&datasets1[i]);
            let prof2 = profile_of(&datasets2[j]);
            let analytic = observe_join(t1, t2, prof1, prof2);
            let m1 = measured_params(t1);
            let m2 = measured_params(t2);
            let measured = observe_join_with_params(t1, t2, &m1, &m2);
            report.row(&[
                &format!("{}K/{}K", grid[i] / 1000, grid[j] / 1000),
                &pct(analytic.err_na()),
                &pct(measured.err_na()),
                &pct(analytic.err_da()),
                &pct(measured.err_da()),
            ]);
        }
    }
    report.finish();
}
