//! Experiment harness for the ICDE 1998 spatial-join cost-model
//! reproduction: every table and figure of the paper's §4, plus the
//! extension studies, regenerable from the command line.
//!
//! ```text
//! experiments <command> [--scale F] [--out DIR]
//!
//! commands:
//!   figure5a        Fig 5(a): exper vs anal NA/DA, all combos, n = 1
//!   figure5b        Fig 5(b): same, n = 2
//!   figure6         Fig 6(a,b): equally populated indexes, height jumps
//!   figure7         Fig 7(a,b): analytic DA sweeps, role-rule exceptions
//!   errors-uniform  §4.1 claims (i)-(iii): relative-error tables
//!   density-sweep   §4.1: D ∈ {0.2 … 0.8}
//!   nonuniform      §4.2: skewed data, global vs local model
//!   real            §4.2: TIGER-like substitution workloads
//!   param-source    ablation: analytic (Eqs 2-5) vs measured parameters
//!   selectivity     §5 extension: join selectivity estimates
//!   role-choice     §4.1(iii): query/data role assignment rule
//!   lru-ablation    §5 extension: LRU buffer study
//!   high-dim        §5 extension: n = 3, 4
//!   algo-compare    SJ vs baselines vs PBSM
//!   parallel        §5 outlook: cost-guided parallel SJ vs round-robin
//!   params-diff     analytic-vs-measured tree parameter table
//!   explain         EXPLAIN ANALYZE of the optimizer's plan for the
//!                   fixed-seed rivers × countries selection-join:
//!                   per-operator estimate vs re-estimate vs measured
//!                   NA/DA with catalog/model error attribution
//!                   (--obs-dir persists plan_analyze.jsonl;
//!                   --calibrate demos the stale-catalog flip and
//!                   persists the corrected catalog.json)
//!   join            one fully observed join: spans, metrics, live
//!                   drift, the Eq-6-seeded progress/ETA engine
//!                   (--watch draws it live; --obs-dir persists the
//!                   snapshot JSONL), and (with --obs-dir) the
//!                   page-access flight recorder + Perfetto export;
//!                   --deadline-ms/--na-budget/--mem-budget arm the
//!                   query governor around the run (decisions stream
//!                   to governor_events.jsonl under --obs-dir)
//!   governor        the governor walkthrough: measure the full
//!                   runtime, reject an over-budget admission, truncate
//!                   at deadline = T/2 on every scheduler (forfeit
//!                   estimate gated against the ±15% envelope at scale
//!                   >= 1), and show ETA-guided shedding retaining more
//!                   pairs than naive truncation (governor_shed.csv;
//!                   --obs-dir persists governor_events.jsonl)
//!   bench-compare   gate a fresh BENCH JSON stream (--current)
//!                   against committed baselines (--baseline, repeat
//!                   to merge; defaults to ./BENCH_*.json): fails on
//!                   >20% speedup loss or imbalance growth
//!   chaos           seeded fault-injection campaigns: transient faults
//!                   must heal to a byte-identical join, permanent leaf
//!                   loss must degrade gracefully with the forfeit
//!                   estimate inside the envelope (exit 1 on gate
//!                   failure)
//!   trace replay    what-if buffer replay of the recorded trace
//!   trace report    per-level histograms + hottest pages of the trace
//!   validate-obs    check every artifact in --obs-dir
//!   all             everything above (except trace/validate-obs)
//!
//! --scale F    scales the paper's 20K–80K cardinalities by F (default
//!              1.0; use e.g. 0.1 for a quick pass)
//! --out DIR    CSV output directory (default results/)
//! --threads T  worker threads for parallel/join commands (default 4)
//! --obs-dir D  join: write the observability artifacts (span JSONL,
//!              metrics JSONL, binary access trace, Perfetto JSON)
//!              into D; chaos adds its fault/drift metrics JSONL;
//!              trace replay/report and validate-obs read them
//! --seed S     chaos: seeds the deterministic fault plans (default
//!              1998; the data seeds stay pinned)
//! --watch      join: redraw the live progress line (fraction, ETA
//!              with the ±15% band, pairs) while the join runs
//! --calibrate  explain: start from a 4×-mis-registered catalog,
//!              write the measured statistics back, persist the
//!              corrected catalog.json and show the re-planning flip
//! --current F  bench-compare: the freshly grepped BENCH JSON
//! --baseline F bench-compare: a committed baseline; repeatable,
//!              later files override earlier per (group, bench)
//! --deadline-ms MS  join: cooperative wall-clock deadline; on expiry
//!              the run degrades (forfeited work priced), never aborts
//! --na-budget F     join: admission budget in Eq-6 node accesses;
//!              over-budget queries are rejected with exit 1
//! --mem-budget B    join: arena memory budget in bytes; a denied
//!              reservation is a typed error, exit 1
//! ```

mod bench_compare;
mod chaos;
mod common;
mod errors;
mod explain;
mod extensions;
mod figures;
mod governor;
mod observability;
mod report;
mod trace;

use common::RunOpts;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    command: String,
    opts: RunOpts,
    watch: bool,
    calibrate: bool,
    current: Option<PathBuf>,
    baselines: Vec<PathBuf>,
    deadline_ms: Option<u64>,
    na_budget: Option<f64>,
    mem_budget: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let mut command = args.next().ok_or("missing command")?;
    if command == "trace" {
        match args.next().as_deref() {
            Some("replay") => command = "trace-replay".into(),
            Some("report") => command = "trace-report".into(),
            other => {
                return Err(format!(
                    "trace needs a subcommand (replay | report), got {}",
                    other.unwrap_or("nothing")
                ))
            }
        }
    }
    let mut scale = 1.0;
    let mut out = PathBuf::from("results");
    let mut threads = 4;
    let mut obs_dir = None;
    let mut seed = 1998;
    let mut watch = false;
    let mut calibrate = false;
    let mut current = None;
    let mut baselines = Vec::new();
    let mut deadline_ms = None;
    let mut na_budget = None;
    let mut mem_budget = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                scale = v
                    .parse::<f64>()
                    .map_err(|e| format!("bad --scale {v}: {e}"))?;
            }
            "--out" => {
                out = PathBuf::from(args.next().ok_or("--out needs a value")?);
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                threads = v
                    .parse::<usize>()
                    .map_err(|e| format!("bad --threads {v}: {e}"))?;
            }
            "--obs-dir" => {
                obs_dir = Some(PathBuf::from(args.next().ok_or("--obs-dir needs a value")?));
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                seed = v
                    .parse::<u64>()
                    .map_err(|e| format!("bad --seed {v}: {e}"))?;
            }
            "--watch" => watch = true,
            "--calibrate" => calibrate = true,
            "--current" => {
                current = Some(PathBuf::from(args.next().ok_or("--current needs a value")?));
            }
            "--baseline" => {
                baselines.push(PathBuf::from(
                    args.next().ok_or("--baseline needs a value")?,
                ));
            }
            "--deadline-ms" => {
                let v = args.next().ok_or("--deadline-ms needs a value")?;
                let ms = v
                    .parse::<u64>()
                    .map_err(|e| format!("bad --deadline-ms {v}: {e}"))?;
                deadline_ms = Some(ms);
            }
            "--na-budget" => {
                let v = args.next().ok_or("--na-budget needs a value")?;
                let b = v
                    .parse::<f64>()
                    .map_err(|e| format!("bad --na-budget {v}: {e}"))?;
                if !b.is_finite() || b <= 0.0 {
                    return Err("--na-budget must be a positive number".into());
                }
                na_budget = Some(b);
            }
            "--mem-budget" => {
                let v = args.next().ok_or("--mem-budget needs a value")?;
                let b = v
                    .parse::<u64>()
                    .map_err(|e| format!("bad --mem-budget {v}: {e}"))?;
                if b == 0 {
                    return Err("--mem-budget must be at least 1 byte".into());
                }
                mem_budget = Some(b);
            }
            "--trace" | "--metrics" => {
                return Err(format!(
                    "{flag} was replaced by --obs-dir DIR (the directory \
                     receives join_trace.jsonl, join_metrics.jsonl, \
                     join_access_trace.bin and join_perfetto.json)"
                ));
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    // One validation seam for the flags every command shares: bad
    // values (and an uncreatable --obs-dir) fail here, before any
    // index is built.
    let opts = RunOpts::new(out, scale, threads, seed, obs_dir)?;
    Ok(Args {
        command,
        opts,
        watch,
        calibrate,
        current,
        baselines,
        deadline_ms,
        na_budget,
        mem_budget,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("usage: experiments <command> [--scale F] [--out DIR]");
            eprintln!("run with `help` for the command list");
            return ExitCode::FAILURE;
        }
    };
    let opts = &args.opts;
    let out = opts.out.as_path();
    let scale = opts.scale;
    let started = std::time::Instant::now();
    let run = |cmd: &str| -> bool {
        match cmd {
            "figure5a" => figures::figure5::<1>(out, scale),
            "figure5b" => figures::figure5::<2>(out, scale),
            "figure6" => figures::figure6(out, scale),
            "figure7" => figures::figure7(out, scale),
            "errors-uniform" => errors::errors_uniform(out, scale),
            "density-sweep" => errors::density_sweep(out, scale),
            "nonuniform" => errors::nonuniform(out, scale),
            "real" => errors::real(out, scale),
            "param-source" => errors::param_source(out, scale),
            "params-diff" => errors::params_diff(out, scale),
            "selectivity" => extensions::selectivity(out, scale),
            "role-choice" => extensions::role_choice(out, scale),
            "lru-ablation" => extensions::lru_ablation(out, scale),
            "high-dim" => extensions::high_dim(out, scale),
            "algo-compare" => extensions::algo_compare(out, scale),
            "parallel" => extensions::parallel_join(out, scale, opts.threads),
            "join" => {
                match observability::join_observed(opts, args.watch, None) {
                    Ok(true) => {}
                    Ok(false) => eprintln!("warning: drift breached the envelope (see above)"),
                    // Unreachable without a governor config, but keep the
                    // arm total rather than panicking on a user path.
                    Err(e) => {
                        eprintln!("join: {e}");
                        return false;
                    }
                }
            }
            _ => return false,
        }
        true
    };
    match args.command.as_str() {
        "all" => {
            for cmd in [
                "figure5a",
                "figure5b",
                "figure6",
                "figure7",
                "errors-uniform",
                "density-sweep",
                "nonuniform",
                "real",
                "param-source",
                "params-diff",
                "selectivity",
                "role-choice",
                "lru-ablation",
                "high-dim",
                "algo-compare",
                "parallel",
                "join",
            ] {
                println!("\n#### {cmd} ####");
                assert!(run(cmd));
            }
        }
        "explain" => {
            let ok = if args.calibrate {
                explain::calibrate(opts)
            } else {
                explain::explain(opts)
            };
            if !ok {
                eprintln!("explain: gate failed");
                return ExitCode::FAILURE;
            }
        }
        "chaos" => {
            if !chaos::chaos(opts) {
                eprintln!("chaos: at least one gate failed");
                return ExitCode::FAILURE;
            }
        }
        "join"
            if args.deadline_ms.is_some()
                || args.na_budget.is_some()
                || args.mem_budget.is_some() =>
        {
            let gov =
                governor::config_from_flags(args.deadline_ms, args.na_budget, args.mem_budget);
            match observability::join_observed(opts, args.watch, gov) {
                Ok(true) => {}
                Ok(false) => eprintln!("warning: drift breached the envelope (see above)"),
                Err(e) => {
                    eprintln!("join: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "governor" => {
            if !governor::governor(opts, args.deadline_ms) {
                eprintln!("governor: at least one gate failed");
                return ExitCode::FAILURE;
            }
        }
        "bench-compare" => {
            let Some(current) = args.current.as_deref() else {
                eprintln!("error: bench-compare needs --current FILE (a grepped BENCH JSON)");
                return ExitCode::FAILURE;
            };
            let baselines = if args.baselines.is_empty() {
                let found = bench_compare::default_baselines();
                if found.is_empty() {
                    eprintln!(
                        "error: no --baseline given and no committed BENCH_*.json found \
                         in the working directory"
                    );
                    return ExitCode::FAILURE;
                }
                found
            } else {
                args.baselines.clone()
            };
            if !bench_compare::bench_compare(current, &baselines) {
                return ExitCode::FAILURE;
            }
            return ExitCode::SUCCESS;
        }
        "validate-obs" => {
            let Some(dir) = opts.require_obs_dir("validate-obs") else {
                return ExitCode::FAILURE;
            };
            if !observability::validate_obs(dir) {
                return ExitCode::FAILURE;
            }
            return ExitCode::SUCCESS;
        }
        "trace-replay" => {
            if !trace::replay_cmd(opts) {
                return ExitCode::FAILURE;
            }
        }
        "trace-report" => {
            if !trace::report_cmd(opts) {
                return ExitCode::FAILURE;
            }
        }
        "help" | "--help" | "-h" => {
            println!("commands: figure5a figure5b figure6 figure7 errors-uniform");
            println!("          density-sweep nonuniform real param-source params-diff");
            println!("          selectivity role-choice lru-ablation high-dim");
            println!("          algo-compare parallel join explain chaos governor");
            println!("          trace-replay trace-report");
            println!("          (also spelled `trace replay` / `trace report`)");
            println!("          bench-compare validate-obs all");
            println!("flags:    --scale F (default 1.0), --out DIR (default results/),");
            println!("          --threads T (parallel/join/chaos commands, default 4),");
            println!("          --obs-dir D (join writes span/metrics/progress JSONL, the");
            println!("          binary access trace and the Perfetto export there; chaos");
            println!("          adds its fault/drift metrics JSONL; trace replay/report");
            println!("          and validate-obs read them back),");
            println!("          --seed S (chaos fault-plan seed, default 1998),");
            println!("          --watch (join: live progress/ETA line),");
            println!("          --calibrate (explain: stale-catalog demo + catalog.json),");
            println!("          --current F / --baseline F (bench-compare inputs; --baseline");
            println!("          repeats, defaults to the committed ./BENCH_*.json),");
            println!("          --deadline-ms MS / --na-budget F / --mem-budget BYTES (join:");
            println!("          arm the query governor; governor: --deadline-ms overrides");
            println!("          the derived half-runtime deadline)");
            return ExitCode::SUCCESS;
        }
        cmd => {
            if !run(cmd) {
                eprintln!("unknown command {cmd}; try `experiments help`");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("\ndone in {:.1}s", started.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}
