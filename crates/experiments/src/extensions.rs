//! Extension studies beyond the paper's published tables: the §5
//! future-work items (selectivity, LRU buffers, high dimensionality) and
//! the role-choice rule of §4.1(iii).

use crate::common::{
    build_tree, cardinality_grid, profile_of, rel_err, run_counting_join, DEFAULT_DENSITY,
};
use crate::report::{int, pct, Report};
use sjcm_core::selectivity::{distance_join_selectivity, join_selectivity};
use sjcm_core::{join, DataProfile, ModelConfig, TreeParams};
use sjcm_datagen::skewed::{gaussian_clusters, ClusterConfig};
use sjcm_datagen::uniform::{generate as uniform, UniformConfig};
use sjcm_geom::Rect;
use sjcm_join::{BufferPolicy, JoinConfig, JoinPredicate, JoinSession};
use std::path::Path;

/// §5 extension: join selectivity — predicted overlapping pairs vs the
/// exact count from the executor, on uniform and skewed data, plus the
/// distance-join variant.
pub fn selectivity(out: &Path, scale: f64) {
    let n = (20_000.0 * scale).round().max(200.0) as usize;
    let mut report = Report::new(
        out,
        "selectivity",
        &[
            "workload",
            "actual_pairs",
            "predicted",
            "err",
            "local_pred",
            "local_err",
        ],
    );
    type SelectivityCase = (String, Vec<Rect<2>>, Vec<Rect<2>>, Option<f64>);
    let cases: Vec<SelectivityCase> = vec![
        (
            "uniform_D0.25".into(),
            uniform::<2>(UniformConfig::new(n, 0.25, 8000)),
            uniform::<2>(UniformConfig::new(n, 0.25, 8001)),
            None,
        ),
        (
            "uniform_D0.8".into(),
            uniform::<2>(UniformConfig::new(n, 0.8, 8002)),
            uniform::<2>(UniformConfig::new(n, 0.8, 8003)),
            None,
        ),
        (
            "uniform_eps0.005".into(),
            uniform::<2>(UniformConfig::new(n, 0.25, 8004)),
            uniform::<2>(UniformConfig::new(n, 0.25, 8005)),
            Some(0.005),
        ),
        (
            "clusters".into(),
            gaussian_clusters::<2>(ClusterConfig::new(n, 0.25, 8006)),
            gaussian_clusters::<2>(ClusterConfig::new(n, 0.25, 8007)),
            None,
        ),
    ];
    for (label, r1, r2, eps) in cases {
        let t1 = build_tree(&r1);
        let t2 = build_tree(&r2);
        let prof1 = profile_of(&r1);
        let prof2 = profile_of(&r2);
        let predicate = match eps {
            None => JoinPredicate::Overlap,
            Some(e) => JoinPredicate::WithinDistance(e),
        };
        let result = JoinSession::new(&t1, &t2)
            .config(JoinConfig {
                predicate,
                collect_pairs: false,
                ..JoinConfig::default()
            })
            .run()
            .expect("ungoverned join cannot fail")
            .result;
        let predicted = match eps {
            None => join_selectivity::<2>(prof1, prof2),
            Some(e) => distance_join_selectivity::<2>(prof1, prof2, e),
        };
        // The §5 extension for non-uniform selectivity: per-cell local
        // evaluation (overlap joins only).
        let (local_pred, local_err) = if eps.is_none() {
            let s1 = sjcm_core::DensitySurface::<2>::from_rects(&r1, 8);
            let s2 = sjcm_core::DensitySurface::<2>::from_rects(&r2, 8);
            let local = sjcm_core::nonuniform::join_selectivity_nonuniform(&s1, &s2);
            (int(local), pct(rel_err(local, result.pair_count as f64)))
        } else {
            ("-".into(), "-".into())
        };
        report.row(&[
            &label,
            &result.pair_count,
            &int(predicted),
            &pct(rel_err(predicted, result.pair_count as f64)),
            &local_pred,
            &local_err,
        ]);
    }
    report.finish();
    println!(
        "note: the clustered row shows why §5 lists non-uniform selectivity \
         as future work — the uniform estimate underestimates clustered \
         joins; the local (density-surface) extension repairs it."
    );
}

/// §4.1(iii): the role-choice rule. For every ordered pair of distinct
/// cardinalities, run both role assignments and compare measured DA with
/// the model's preference.
pub fn role_choice(out: &Path, scale: f64) {
    let grid = cardinality_grid(scale);
    let cfg = ModelConfig::paper(2);
    let datasets: Vec<Vec<Rect<2>>> = grid
        .iter()
        .enumerate()
        .map(|(i, &n)| uniform::<2>(UniformConfig::new(n, DEFAULT_DENSITY, 9000 + i as u64)))
        .collect();
    let trees: Vec<_> = datasets.iter().map(|d| build_tree(d)).collect();
    let mut report = Report::new(
        out,
        "role_choice",
        &[
            "big/small",
            "exper_DA(data=big)",
            "exper_DA(data=small)",
            "anal_DA(data=big)",
            "anal_DA(data=small)",
            "rule_holds_exper",
            "rule_holds_anal",
        ],
    );
    for i in 0..grid.len() {
        for j in 0..i {
            // i = bigger set, j = smaller set.
            let (big_t, small_t) = (&trees[i], &trees[j]);
            let (big_p, small_p) = (profile_of(&datasets[i]), profile_of(&datasets[j]));
            let run = |data: &sjcm_rtree::RTree<2>, query: &sjcm_rtree::RTree<2>| {
                run_counting_join(data, query).da_total()
            };
            let exper_rule = run(big_t, small_t);
            let exper_anti = run(small_t, big_t);
            let pb = TreeParams::<2>::from_data(big_p, &cfg);
            let ps = TreeParams::<2>::from_data(small_p, &cfg);
            let anal_rule = join::join_cost_da(&pb, &ps);
            let anal_anti = join::join_cost_da(&ps, &pb);
            report.row(&[
                &format!("{}K/{}K", grid[i] / 1000, grid[j] / 1000),
                &exper_rule,
                &exper_anti,
                &int(anal_rule),
                &int(anal_anti),
                &(exper_rule <= exper_anti),
                &(anal_rule <= anal_anti),
            ]);
        }
    }
    report.finish();
}

/// §5 future work: LRU buffer ablation. DA under no buffer, path buffer
/// and LRU buffers of growing capacity, against the analytic NA/DA
/// bounds.
pub fn lru_ablation(out: &Path, scale: f64) {
    let n = (40_000.0 * scale).round().max(200.0) as usize;
    let r1 = uniform::<2>(UniformConfig::new(n, DEFAULT_DENSITY, 9100));
    let r2 = uniform::<2>(UniformConfig::new(n, DEFAULT_DENSITY, 9101));
    let t1 = build_tree(&r1);
    let t2 = build_tree(&r2);
    let cfg = ModelConfig::paper(2);
    let p1 = TreeParams::<2>::from_data(profile_of(&r1), &cfg);
    let p2 = TreeParams::<2>::from_data(profile_of(&r2), &cfg);
    println!(
        "analytic bounds: NA = {:.0} (Eq 7), DA_path = {:.0} (Eq 10)",
        join::join_cost_na(&p1, &p2),
        join::join_cost_da(&p1, &p2)
    );
    let mut report = Report::new(out, "lru_ablation", &["buffer", "exper_DA", "exper_NA"]);
    let mut run = |label: &str, policy: BufferPolicy| {
        let r = JoinSession::new(&t1, &t2)
            .config(JoinConfig {
                buffer: policy,
                collect_pairs: false,
                ..JoinConfig::default()
            })
            .run()
            .expect("ungoverned join cannot fail")
            .result;
        report.row(&[&label, &r.da_total(), &r.na_total()]);
    };
    run("none", BufferPolicy::None);
    run("path", BufferPolicy::Path);
    for cap in [8, 32, 128, 512, 2048] {
        run(&format!("lru{cap}"), BufferPolicy::Lru(cap));
    }
    report.finish();
}

/// §5 future work: model accuracy in higher dimensionality (n = 3, 4).
pub fn high_dim(out: &Path, scale: f64) {
    let n = (20_000.0 * scale).round().max(200.0) as usize;
    let mut report = Report::new(
        out,
        "high_dim",
        &[
            "n_dims", "exper_NA", "anal_NA", "err_NA", "exper_DA", "anal_DA", "err_DA",
        ],
    );
    run_high_dim::<3>(&mut report, n);
    run_high_dim::<4>(&mut report, n);
    report.finish();
    println!(
        "note: the paper expects degradation here — plain R*-trees are \
         not efficient in high dimensionality (hence the X-tree citation)."
    );
}

fn run_high_dim<const DIM: usize>(report: &mut Report, n: usize) {
    let r1 = uniform::<DIM>(UniformConfig::new(n, 0.3, 9200 + DIM as u64));
    let r2 = uniform::<DIM>(UniformConfig::new(n, 0.3, 9300 + DIM as u64));
    let t1 = build_tree(&r1);
    let t2 = build_tree(&r2);
    let cfg = ModelConfig::paper(DIM);
    let p1 = TreeParams::<DIM>::from_data(profile_of(&r1), &cfg);
    let p2 = TreeParams::<DIM>::from_data(profile_of(&r2), &cfg);
    let result = run_counting_join(&t1, &t2);
    let anal_na = join::join_cost_na(&p1, &p2);
    let anal_da = join::join_cost_da(&p1, &p2);
    report.row(&[
        &DIM,
        &result.na_total(),
        &int(anal_na),
        &pct(rel_err(anal_na, result.na_total() as f64)),
        &result.da_total(),
        &int(anal_da),
        &pct(rel_err(anal_da, result.da_total() as f64)),
    ]);
}

/// Algorithm comparison across the paper's §2.1 taxonomy: synchronized
/// traversal (indexes on both sides), index nested loop (one index), and
/// PBSM (no indexes — \[PD96\]), measured in simulated page I/O on the
/// same workloads. Not a table in the paper, but the context its related
/// work assumes; regenerates the "who wins and why" picture.
pub fn algo_compare(out: &Path, scale: f64) {
    use sjcm_join::baselines::index_nested_loop_join;
    use sjcm_join::PbsmSession;
    use sjcm_rtree::ObjectId;

    let n = (30_000.0 * scale).round().max(300.0) as usize;
    let mut report = Report::new(
        out,
        "algo_compare",
        &[
            "workload",
            "SJ_DA",
            "INL_NA",
            "PBSM_pages",
            "PBSM_repl",
            "pairs",
        ],
    );
    let workloads: Vec<(&str, Vec<Rect<2>>, Vec<Rect<2>>)> = vec![
        (
            "uniform",
            uniform::<2>(UniformConfig::new(n, DEFAULT_DENSITY, 9400)),
            uniform::<2>(UniformConfig::new(n, DEFAULT_DENSITY, 9401)),
        ),
        (
            "tiger",
            sjcm_datagen::tiger::generate(sjcm_datagen::tiger::TigerConfig::roads(n, 9402)),
            sjcm_datagen::tiger::generate(sjcm_datagen::tiger::TigerConfig::hydro(n / 2, 9403)),
        ),
        (
            "clustered",
            gaussian_clusters::<2>(ClusterConfig::new(n, 0.3, 9404)),
            gaussian_clusters::<2>(ClusterConfig::new(n, 0.3, 9405)),
        ),
    ];
    for (label, r1, r2) in workloads {
        let t1 = build_tree(&r1);
        let t2 = build_tree(&r2);
        let items1: Vec<(Rect<2>, ObjectId)> = r1
            .iter()
            .enumerate()
            .map(|(i, r)| (*r, ObjectId(i as u32)))
            .collect();
        let items2: Vec<(Rect<2>, ObjectId)> = r2
            .iter()
            .enumerate()
            .map(|(i, r)| (*r, ObjectId(i as u32)))
            .collect();
        let sj = run_counting_join(&t1, &t2);
        let inl = index_nested_loop_join(&t1, &items2);
        // PBSM partition grid sized so a partition of each input fits a
        // few pages, per [PD96]'s guidance.
        let pbsm = PbsmSession::new(&items1, &items2, 16, 50)
            .run()
            .expect("ungoverned PBSM cannot fail")
            .result;
        report.row(&[
            &label,
            &sj.da_total(),
            &inl.node_accesses,
            &pbsm.io_pages,
            &format!("{:.2}", pbsm.replication_factor),
            &sj.pair_count,
        ]);
    }
    report.finish();
    println!(
        "SJ exploits pre-built indexes (cheapest); PBSM's two-pass \
         partitioning beats per-object probing (INL) without any index."
    );
}

/// Convenience wrapper so `all` can estimate a DataProfile quickly.
#[allow(dead_code)]
pub fn quick_profile(n: u64, d: f64) -> DataProfile {
    DataProfile::new(n, d)
}

/// §5 outlook: the parallel SJ, scheduled by the paper's own cost
/// model. Compares the legacy static round-robin sharding against the
/// cost-guided scheduler (Eq-6-priced work units, LPT seeding, work
/// stealing) on realized per-worker NA balance, and surfaces the
/// per-worker tallies.
pub fn parallel_join(out: &Path, scale: f64, threads: usize) {
    use sjcm_join::Scheduler;
    let mut report = Report::new(
        out,
        "parallel",
        &[
            "N", "threads", "NA", "DA_seq", "DA_rr", "DA_cg", "imb_rr", "imb_cg",
        ],
    );
    let mut workers = Report::new(
        out,
        "parallel_workers",
        &[
            "N",
            "mode",
            "worker",
            "units",
            "na",
            "da",
            "pairs",
            "units_executed",
            "units_stolen",
            "steal_attempts",
        ],
    );
    workers.comment(
        "units/na/da/pairs are attributed to the *planned* worker and are \
         deterministic; units_executed/units_stolen/steal_attempts are \
         per-executing-thread steal tallies and are timing-dependent \
         (they vary run to run, only their totals are invariant)",
    );
    for n in cardinality_grid(scale) {
        let r1 = uniform::<2>(UniformConfig::new(n, DEFAULT_DENSITY, 9500));
        let r2 = uniform::<2>(UniformConfig::new(n, DEFAULT_DENSITY, 9501));
        let t1 = build_tree(&r1);
        let t2 = build_tree(&r2);
        let config = JoinConfig {
            buffer: BufferPolicy::Path,
            collect_pairs: false,
            ..JoinConfig::default()
        };
        let run = |sched: Scheduler| {
            JoinSession::new(&t1, &t2)
                .config(config)
                .scheduler(sched)
                .run()
                .expect("ungoverned join cannot fail")
                .result
        };
        let seq = run(Scheduler::Sequential);
        let rr = run(Scheduler::RoundRobin { threads });
        let cg = run(Scheduler::CostGuided { threads });
        // The schedulers must be invisible in the aggregate measures.
        assert_eq!(rr.na_total(), seq.na_total());
        assert_eq!(cg.na_total(), seq.na_total());
        assert_eq!(rr.pair_count, seq.pair_count);
        assert_eq!(cg.pair_count, seq.pair_count);
        report.row(&[
            &n,
            &threads,
            &seq.na_total(),
            &seq.da_total(),
            &rr.da_total(),
            &cg.da_total(),
            &format!("{:.3}", rr.na_imbalance()),
            &format!("{:.3}", cg.na_imbalance()),
        ]);
        for (mode, result) in [("round_robin", &rr), ("cost_guided", &cg)] {
            for (w, t) in result.workers.iter().enumerate() {
                let steal = result.steals.get(w).cloned().unwrap_or_default();
                workers.row(&[
                    &n,
                    &mode,
                    &w,
                    &t.units,
                    &t.na,
                    &t.da,
                    &t.pair_count,
                    &steal.units_executed,
                    &steal.units_stolen,
                    &steal.steal_attempts,
                ]);
            }
        }
    }
    report.finish();
    workers.finish();
    println!(
        "imb = max_worker_NA / mean_worker_NA (1.0 = perfect balance). \
         The cost-guided scheduler prices each work unit with Eq 6 on \
         measured subtree parameters, seeds workers LPT-first, and lets \
         idle workers steal from the busiest deque."
    );
}
