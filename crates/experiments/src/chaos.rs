//! The `chaos` command: seeded fault-injection campaigns over the
//! degradable join pipeline.
//!
//! Two campaigns run against the same pair of fixed-seed uniform
//! indexes, each under every execution strategy (sequential SJ,
//! cost-guided parallel, round-robin parallel):
//!
//! * **transient** — every page read fails up to a per-page budget that
//!   stays *within* the retry policy, so the resilient layer must heal
//!   every fault. The gate is byte-exactness: pair multiset, NA and DA
//!   must equal the strategy's own fault-free baseline, and the
//!   recovery rate must be 100% with nothing quarantined.
//! * **loss** — a pseudo-random subset of *leaf* pages is permanently
//!   lost. The gate is graceful degradation: no panic, identical
//!   forfeited-subtree inventories and degraded answers across all
//!   three strategies, and — at paper scale (`--scale ≥ 1`) — the
//!   Eq-3/Eq-6 forfeit estimate of the lost pairs landing inside the
//!   paper's ~15% envelope of the true delta against the baseline.
//!
//! Results go to `chaos.csv`; with `--obs-dir` the campaigns also
//! publish `fault.*` counters and the forfeit estimate as `drift.*`
//! gauges into [`CHAOS_METRICS_FILE`], which `validate-obs` checks with
//! the same rules as the join command's metrics artifact.

use crate::common::{build_tree, rel_err, RunOpts, DEFAULT_DENSITY};
use crate::report::{int, pct, Report};
use sjcm_datagen::uniform::{generate as uniform, UniformConfig};
use sjcm_join::{
    BufferPolicy, DegradedJoinResult, JoinConfig, JoinResultSet, JoinSession, Scheduler,
};
use sjcm_obs::{DriftMonitor, MetricsRegistry, PAPER_ENVELOPE};
use sjcm_rtree::RTree;
use sjcm_storage::{
    fnv1a, FaultInjector, FaultPlan, RetryPolicy, FAULT_INJECTED, FAULT_QUARANTINED,
    FAULT_RECOVERED, FAULT_RETRIED,
};

/// Metrics-JSONL artifact of the chaos campaigns inside `--obs-dir`.
pub const CHAOS_METRICS_FILE: &str = "chaos_metrics.jsonl";

/// Per-page transient-fault rate of the transient campaign.
const TRANSIENT_RATE: f64 = 0.25;
/// Per-page transient budget — must stay ≤ the default retry count so
/// every fault heals.
const TRANSIENT_BUDGET: u32 = 2;
/// Leaf-level permanent-loss rate of the loss campaign.
const LOSS_RATE: f64 = 0.02;

#[derive(Clone, Copy)]
enum Strategy {
    Seq,
    CostGuided(usize),
    RoundRobin(usize),
}

impl Strategy {
    fn name(&self) -> &'static str {
        match self {
            Strategy::Seq => "sequential",
            Strategy::CostGuided(_) => "cost-guided",
            Strategy::RoundRobin(_) => "round-robin",
        }
    }

    fn run(
        &self,
        t1: &RTree<2>,
        t2: &RTree<2>,
        config: JoinConfig,
        plan: Option<FaultPlan>,
    ) -> Result<DegradedJoinResult<2>, sjcm_join::JoinError> {
        // A fresh injector per run: every strategy faces identical
        // fault state, which is what makes the determinism gates fair.
        let inj = match plan {
            Some(p) => FaultInjector::enabled(p, RetryPolicy::default()),
            None => FaultInjector::disabled(),
        };
        let sched = match *self {
            Strategy::Seq => Scheduler::Sequential,
            Strategy::CostGuided(t) => Scheduler::CostGuided { threads: t },
            Strategy::RoundRobin(t) => Scheduler::RoundRobin { threads: t },
        };
        JoinSession::new(t1, t2)
            .config(config)
            .scheduler(sched)
            .faults(&inj)
            .run()
    }
}

/// Order-independent fingerprint of the qualifying pair multiset.
fn pairs_fingerprint(r: &JoinResultSet) -> u64 {
    let mut p = r.pairs.clone();
    p.sort_unstable();
    let mut bytes = Vec::with_capacity(p.len() * 8);
    for (a, b) in &p {
        bytes.extend_from_slice(&a.0.to_le_bytes());
        bytes.extend_from_slice(&b.0.to_le_bytes());
    }
    fnv1a(&bytes)
}

/// The `chaos` command. Returns `true` only when every gate holds.
pub fn chaos(opts: &RunOpts) -> bool {
    let (out, scale, threads, seed) = (opts.out.as_path(), opts.scale, opts.threads, opts.seed);
    let obs_dir = opts.obs_dir();
    let n = (60_000.0 * scale).round().max(600.0) as usize;
    let paper_scale = scale >= 1.0;
    // Below paper scale the forfeit estimator's localized-uniformity
    // assumption sees small-sample noise (a handful of lost leaves),
    // so the drift envelope is widened and the 15% gate is report-only.
    let envelope = if paper_scale { PAPER_ENVELOPE } else { 0.5 };
    println!("chaos: 2 x {n} objects (seeds 9600/9601), campaign seed {seed}, {threads} threads");

    let t1 = build_tree(&uniform::<2>(UniformConfig::new(n, DEFAULT_DENSITY, 9600)));
    let t2 = build_tree(&uniform::<2>(UniformConfig::new(n, DEFAULT_DENSITY, 9601)));
    let config = JoinConfig {
        buffer: BufferPolicy::Path,
        ..JoinConfig::default()
    };
    let strategies = [
        Strategy::Seq,
        Strategy::CostGuided(threads),
        Strategy::RoundRobin(threads),
    ];

    let ok = std::cell::Cell::new(true);
    let gate = |cond: bool, msg: String| {
        if !cond {
            eprintln!("chaos GATE: {msg}");
            ok.set(false);
        }
    };

    let run_campaign =
        |name: &str, plan: Option<FaultPlan>| -> Option<Vec<DegradedJoinResult<2>>> {
            let mut results = Vec::new();
            for s in &strategies {
                match s.run(&t1, &t2, config, plan) {
                    Ok(d) => results.push(d),
                    Err(e) => {
                        eprintln!("chaos GATE: {name}/{}: join failed: {e}", s.name());
                        return None;
                    }
                }
            }
            Some(results)
        };

    let Some(baseline) = run_campaign("baseline", None) else {
        return false;
    };
    let transient_plan = FaultPlan::none(seed).with_transient(TRANSIENT_RATE, TRANSIENT_BUDGET);
    let Some(transient) = run_campaign("transient", Some(transient_plan)) else {
        return false;
    };
    let loss_plan = FaultPlan::none(seed.wrapping_add(1)).with_loss_at_level(LOSS_RATE, 0);
    let Some(loss) = run_campaign("loss", Some(loss_plan)) else {
        return false;
    };

    let base_prints: Vec<u64> = baseline
        .iter()
        .map(|d| pairs_fingerprint(&d.result))
        .collect();

    // Transient gates: exactness against the strategy's own baseline,
    // full recovery, nothing quarantined, and a plan that actually bit.
    for ((s, d), (b, bp)) in strategies
        .iter()
        .zip(&transient)
        .zip(baseline.iter().zip(&base_prints))
    {
        let name = s.name();
        gate(
            d.is_exact(),
            format!("transient/{name}: forfeited subtrees"),
        );
        gate(
            d.faults.injected() > 0,
            format!("transient/{name}: the plan injected nothing"),
        );
        gate(
            d.faults.quarantined == 0,
            format!(
                "transient/{name}: {} pages quarantined under an in-budget plan",
                d.faults.quarantined
            ),
        );
        gate(
            d.faults.recovery_rate() == Some(1.0),
            format!(
                "transient/{name}: recovery rate {:?}, expected 100%",
                d.faults.recovery_rate()
            ),
        );
        gate(
            pairs_fingerprint(&d.result) == *bp && d.result.pair_count == b.result.pair_count,
            format!("transient/{name}: pair multiset differs from fault-free run"),
        );
        gate(
            d.result.na_total() == b.result.na_total(),
            format!(
                "transient/{name}: NA {} != fault-free {}",
                d.result.na_total(),
                b.result.na_total()
            ),
        );
        gate(
            d.result.da_total() == b.result.da_total(),
            format!(
                "transient/{name}: DA {} != fault-free {}",
                d.result.da_total(),
                b.result.da_total()
            ),
        );
    }

    // Loss gates: identical containment across strategies, a degraded
    // answer that never exceeds the baseline, and (at paper scale) the
    // forfeit estimate inside the envelope of the true delta.
    for (s, d) in strategies.iter().zip(&loss).skip(1) {
        let name = s.name();
        gate(
            d.skips == loss[0].skips,
            format!("loss/{name}: forfeited inventory differs from sequential"),
        );
        gate(
            pairs_fingerprint(&d.result) == pairs_fingerprint(&loss[0].result),
            format!("loss/{name}: degraded answer differs from sequential"),
        );
        gate(
            d.result.na_total() == loss[0].result.na_total(),
            format!("loss/{name}: degraded NA differs from sequential"),
        );
    }
    for (s, (d, b)) in strategies.iter().zip(loss.iter().zip(&baseline)) {
        gate(
            d.result.pair_count <= b.result.pair_count,
            format!("loss/{}: degraded run found extra pairs", s.name()),
        );
    }
    let true_lost = (baseline[0].result.pair_count - loss[0].result.pair_count) as f64;
    let est_lost = loss[0].forfeited_pairs();
    let loss_err = rel_err(est_lost, true_lost);
    if paper_scale {
        gate(
            !loss[0].is_exact(),
            "loss: the plan lost no pages at paper scale".to_string(),
        );
        gate(
            loss_err <= PAPER_ENVELOPE,
            format!(
                "loss: forfeit estimate {est_lost:.1} vs true {true_lost:.0} \
                 ({} > {}% envelope)",
                pct(loss_err),
                PAPER_ENVELOPE * 100.0
            ),
        );
    }

    // The forfeit estimate is a model prediction like any other — run
    // it through the drift monitor so it lands in the metrics artifact
    // under the same `drift.*` contract `validate-obs` already checks.
    let drift = DriftMonitor::new(envelope);
    drift.predict("chaos.loss.forfeited_pairs", est_lost);
    drift.observe("chaos.loss.forfeited_pairs", true_lost);
    let transient_lost = (baseline[0].result.pair_count - transient[0].result.pair_count) as f64;
    drift.predict("chaos.transient.forfeited_pairs", 0.0);
    drift.observe("chaos.transient.forfeited_pairs", transient_lost);
    gate(
        drift.all_within(),
        format!(
            "forfeit drift breached the {:.0}% envelope (see chaos.csv)",
            envelope * 100.0
        ),
    );

    let metrics = MetricsRegistry::new();
    let mut table = Report::new(
        out,
        "chaos",
        &[
            "campaign",
            "strategy",
            "injected",
            "retried",
            "recovered",
            "quarantined",
            "recovery",
            "exact",
            "pairs",
            "skips",
            "est_lost",
            "true_lost",
            "rel_err",
        ],
    );
    table.comment(&format!(
        "fault plans seeded from --seed {seed}; 2 x {n} uniform objects, \
         D = {DEFAULT_DENSITY}, data seeds 9600/9601, {threads} threads"
    ));
    table.comment(&format!(
        "transient: rate {TRANSIENT_RATE} budget {TRANSIENT_BUDGET} (within retry policy); \
         loss: leaf-level rate {LOSS_RATE}; forfeit envelope {:.0}% ({})",
        envelope * 100.0,
        if paper_scale {
            "paper scale, enforced"
        } else {
            "reduced scale, widened"
        }
    ));
    for (campaign, results) in [
        ("baseline", &baseline),
        ("transient", &transient),
        ("loss", &loss),
    ] {
        for ((s, d), b) in strategies.iter().zip(results).zip(&baseline) {
            let c = d.faults;
            let recovery = c
                .recovery_rate()
                .map(pct)
                .unwrap_or_else(|| "-".to_string());
            let (est, true_d, err) = if campaign == "loss" {
                let t = (b.result.pair_count - d.result.pair_count) as f64;
                let e = d.forfeited_pairs();
                (int(e), int(t), pct(rel_err(e, t)))
            } else {
                ("-".into(), "-".into(), "-".into())
            };
            table.row(&[
                &campaign,
                &s.name(),
                &c.injected(),
                &c.retried,
                &c.recovered,
                &c.quarantined,
                &recovery,
                &if d.is_exact() { "yes" } else { "no" },
                &d.result.pair_count,
                &d.skips.len(),
                &est,
                &true_d,
                &err,
            ]);
            let prefix = format!("chaos.{campaign}.{}", s.name());
            metrics.counter_add(&format!("{prefix}.{FAULT_INJECTED}"), c.injected());
            metrics.counter_add(&format!("{prefix}.{FAULT_RETRIED}"), c.retried);
            metrics.counter_add(&format!("{prefix}.{FAULT_RECOVERED}"), c.recovered);
            metrics.counter_add(&format!("{prefix}.{FAULT_QUARANTINED}"), c.quarantined);
            metrics.counter_add(
                &format!("{prefix}.fault.quarantine_hits"),
                c.quarantine_hits,
            );
            metrics.counter_add(&format!("{prefix}.fault.backoff_ticks"), c.backoff_ticks);
            if let Some(r) = c.recovery_rate() {
                metrics.gauge_set(&format!("{prefix}.recovery_rate"), r);
            }
            metrics.gauge_set(
                &format!("{prefix}.forfeited_fraction"),
                d.forfeited_fraction(),
            );
        }
    }
    table.finish();
    println!(
        "forfeit estimate: {est_lost:.1} lost pairs predicted, {true_lost:.0} actually lost \
         ({} relative error, envelope {:.0}%)",
        pct(loss_err),
        envelope * 100.0
    );

    drift.publish(&metrics);
    if let Some(dir) = obs_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
        } else {
            let path = dir.join(CHAOS_METRICS_FILE);
            match metrics.write_jsonl(&path) {
                Ok(()) => println!("[metrics] {}", path.display()),
                Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
            }
        }
    }

    if ok.get() {
        println!("chaos: all gates passed");
    }
    ok.get()
}
