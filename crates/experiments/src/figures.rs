//! Regeneration of the paper's figures (§4, Figures 5–7).

use crate::common::{build_tree, cardinality_grid, observe_join, profile_of, DEFAULT_DENSITY};
use crate::report::{int, pct, Report};
use sjcm_core::{join, DataProfile, ModelConfig, TreeParams};
use sjcm_datagen::uniform::{generate, UniformConfig};
use sjcm_rtree::RTree;
use std::path::Path;

/// Figure 5: experimental vs analytical NA and DA for all N_R1/N_R2
/// combinations of uniform data. `DIM = 1` regenerates Figure 5(a),
/// `DIM = 2` Figure 5(b).
pub fn figure5<const DIM: usize>(out: &Path, scale: f64) {
    let grid = cardinality_grid(scale);
    println!(
        "Figure 5 ({}-D): uniform data, D = {DEFAULT_DENSITY}, N ∈ {grid:?}",
        DIM
    );
    // Two independent data sets per cardinality — one for each join role
    // — so the N/N diagonal is a join of distinct sets, as in the paper,
    // not a perfectly correlated self-join. Each tree is built once and
    // reused across combinations.
    let datasets1: Vec<Vec<sjcm_geom::Rect<DIM>>> = grid
        .iter()
        .enumerate()
        .map(|(i, &n)| generate::<DIM>(UniformConfig::new(n, DEFAULT_DENSITY, 1000 + i as u64)))
        .collect();
    let datasets2: Vec<Vec<sjcm_geom::Rect<DIM>>> = grid
        .iter()
        .enumerate()
        .map(|(i, &n)| generate::<DIM>(UniformConfig::new(n, DEFAULT_DENSITY, 1500 + i as u64)))
        .collect();
    let trees1: Vec<RTree<DIM>> = datasets1.iter().map(|d| build_tree(d)).collect();
    let trees2: Vec<RTree<DIM>> = datasets2.iter().map(|d| build_tree(d)).collect();
    let mut report = Report::new(
        out,
        &format!("figure5{}", if DIM == 1 { "a" } else { "b" }),
        &[
            "combo",
            "exper_NA",
            "anal_NA",
            "err_NA",
            "exper_DA",
            "anal_DA",
            "err_DA",
            "corr_err_NA",
            "corr_err_DA",
            "h1",
            "h2",
        ],
    );
    let corrected = ModelConfig::paper_corrected(DIM);
    for (i, t1) in trees1.iter().enumerate() {
        for (j, t2) in trees2.iter().enumerate() {
            let prof1 = profile_of(&datasets1[i]);
            let prof2 = profile_of(&datasets2[j]);
            let obs = observe_join(t1, t2, prof1, prof2);
            // The corrected model (root-aware height, c = 0.70) —
            // see EXPERIMENTS.md on the height-boundary artifact.
            let c1 = TreeParams::<DIM>::from_data(prof1, &corrected);
            let c2 = TreeParams::<DIM>::from_data(prof2, &corrected);
            let corr_na = join::join_cost_na(&c1, &c2);
            let corr_da = join::join_cost_da(&c1, &c2);
            let combo = format!("{}K/{}K", grid[i] / 1000, grid[j] / 1000);
            report.row(&[
                &combo,
                &obs.exper_na,
                &int(obs.anal_na),
                &pct(obs.err_na()),
                &obs.exper_da,
                &int(obs.anal_da),
                &pct(obs.err_da()),
                &pct(crate::common::rel_err(corr_na, obs.exper_na as f64)),
                &pct(crate::common::rel_err(corr_da, obs.exper_da as f64)),
                &t1.height(),
                &t2.height(),
            ]);
        }
    }
    report.finish();
}

/// Figure 6: NA and DA for equally populated indexes — the plots whose
/// shape reveals the tree heights (linear while h is constant, jumping
/// when h grows). Analytical curves plus the experimental check.
pub fn figure6(out: &Path, scale: f64) {
    figure6_dim::<1>(out, scale, "figure6a");
    figure6_dim::<2>(out, scale, "figure6b");
}

fn figure6_dim<const DIM: usize>(out: &Path, scale: f64, name: &str) {
    let grid = cardinality_grid(scale);
    let cfg = ModelConfig::paper(DIM);
    let mut report = Report::new(
        out,
        name,
        &[
            "N", "anal_NA", "anal_DA", "exper_NA", "exper_DA", "anal_h", "exper_h",
        ],
    );
    for (i, &n) in grid.iter().enumerate() {
        let rects1 = generate::<DIM>(UniformConfig::new(n, DEFAULT_DENSITY, 2000 + i as u64));
        let rects2 = generate::<DIM>(UniformConfig::new(n, DEFAULT_DENSITY, 2500 + i as u64));
        let t1 = build_tree(&rects1);
        let t2 = build_tree(&rects2);
        let prof = profile_of(&rects1);
        let params = TreeParams::<DIM>::from_data(prof, &cfg);
        let obs = observe_join(&t1, &t2, prof, profile_of(&rects2));
        report.row(&[
            &format!("{}K/{}K", n / 1000, n / 1000),
            &int(obs.anal_na),
            &int(obs.anal_da),
            &obs.exper_na,
            &obs.exper_da,
            &params.height(),
            &t1.height(),
        ]);
    }
    report.finish();
}

/// Figure 7: purely analytical DA for varying N_R1 or N_R2 with the
/// other cardinality fixed at 20K / 80K — the asymmetry study of Eq 12.
/// Also reports where the "smaller index as query tree" rule inverts
/// (the paper's AREA 2 / AREA 3 exceptions in Figure 7b).
pub fn figure7(out: &Path, scale: f64) {
    figure7_dim::<1>(out, scale, "figure7a");
    figure7_dim::<2>(out, scale, "figure7b");
}

fn figure7_dim<const DIM: usize>(out: &Path, scale: f64, name: &str) {
    let cfg = ModelConfig::paper(DIM);
    let lo = (20_000.0 * scale).round().max(100.0) as u64;
    let hi = (80_000.0 * scale).round().max(400.0) as u64;
    let steps = 13usize;
    let params_of =
        |n: u64| TreeParams::<DIM>::from_data(DataProfile::new(n, DEFAULT_DENSITY), &cfg);
    let fixed_lo = params_of(lo);
    let fixed_hi = params_of(hi);
    let mut report = Report::new(
        out,
        name,
        &[
            "N_vary",
            "DA(R1=x,R2=20K)",
            "DA(R1=x,R2=80K)",
            "DA(R1=20K,R2=x)",
            "DA(R1=80K,R2=x)",
        ],
    );
    let mut rule_violations = Vec::new();
    for s in 0..steps {
        let x = lo + (hi - lo) * s as u64 / (steps as u64 - 1);
        let px = params_of(x);
        let da = [
            join::join_cost_da(&px, &fixed_lo),
            join::join_cost_da(&px, &fixed_hi),
            join::join_cost_da(&fixed_lo, &px),
            join::join_cost_da(&fixed_hi, &px),
        ];
        report.row(&[
            &format!("{}K", x / 1000),
            &int(da[0]),
            &int(da[1]),
            &int(da[2]),
            &int(da[3]),
        ]);
        // Role rule check at this x against both fixed cardinalities.
        for (fixed_n, fixed_p) in [(lo, &fixed_lo), (hi, &fixed_hi)] {
            if x == fixed_n {
                continue;
            }
            let (big, small) = if x > fixed_n {
                (&px, fixed_p)
            } else {
                (fixed_p, &px)
            };
            let rule = join::join_cost_da(big, small);
            let anti = join::join_cost_da(small, big);
            if rule > anti {
                rule_violations.push(format!(
                    "x={}K fixed={}K (h {} vs {}): query-role rule inverted \
                     ({:.0} > {:.0})",
                    x / 1000,
                    fixed_n / 1000,
                    big.height(),
                    small.height(),
                    rule,
                    anti
                ));
            }
        }
    }
    report.finish();
    if rule_violations.is_empty() {
        println!("role rule (smaller index as query tree) holds everywhere");
    } else {
        println!("role-rule exceptions (the paper's AREA 2/3 behaviour in Fig 7b):");
        for v in rule_violations {
            println!("  {v}");
        }
    }
}
