//! The `governor` command: the deadline/budget walkthrough over the
//! governed join pipeline.
//!
//! Against one pair of fixed-seed uniform indexes the walkthrough runs
//! four acts:
//!
//! 1. **nominal** — every strategy (sequential SJ, cost-guided
//!    parallel, round-robin parallel) runs ungoverned to measure its
//!    full runtime `T` and exact answer; the governed acts are judged
//!    against these.
//! 2. **admission** — a 1-NA budget is priced with the Eq-6 prior and
//!    rejected *before any page is touched* ([`JoinError::Rejected`]
//!    carries the prediction); the same budget at half the predicted
//!    cost under [`AdmissionPolicy::Degrade`] admits a capped
//!    ordinal-prefix of the root units instead.
//! 3. **deadline** — each strategy reruns under `deadline = T/2`
//!    (override with `--deadline-ms`): the run must come back as a
//!    well-formed [`DegradedJoinResult`], and at paper scale
//!    (`--scale ≥ 1`) the Eq-3/Eq-6 forfeit estimate of the pairs the
//!    deadline cost must land inside the paper's ~15% envelope of the
//!    true delta against the nominal answer.
//! 4. **shed vs truncate** — on a *clustered* pair of indexes (shared
//!    Gaussian cluster layout, disjoint objects — co-located hot spots)
//!    the round-robin strategy reruns twice at the same half-runtime
//!    deadline, once truncating blindly at expiry and once with the ETA
//!    overrun predictor shedding lowest-value units early; at paper
//!    scale shedding must retain strictly more result pairs. Clustered
//!    data is the demonstration workload on purpose: with uniform data
//!    every root unit carries about the same pairs-per-NA value, so
//!    *which* units a deadline forfeits barely matters — hot spots are
//!    what give the Eq-3 value model something to rank.
//!
//! Results go to `governor_shed.csv`; with `--obs-dir` the shed run's
//! decision log is persisted as `governor_events.jsonl`, which
//! `validate-obs` checks against the `sjcm.governor.v1` contract.

use crate::common::{build_tree, rel_err, RunOpts, DEFAULT_DENSITY};
use crate::report::{int, pct, Report};
use sjcm_datagen::skewed::{gaussian_clusters, ClusterConfig};
use sjcm_datagen::uniform::{generate as uniform, UniformConfig};
use sjcm_join::{
    assert_well_formed, AdmissionPolicy, BufferPolicy, DegradedJoinResult, Governor,
    GovernorConfig, JoinConfig, JoinError, JoinSession, Scheduler,
};
use sjcm_obs::PAPER_ENVELOPE;
use sjcm_rtree::RTree;
use std::time::{Duration, Instant};

/// Builds the `join` command's governor configuration from the CLI
/// flags; `None` when no flag was given (the ungoverned fast path).
pub fn config_from_flags(
    deadline_ms: Option<u64>,
    na_budget: Option<f64>,
    mem_budget: Option<u64>,
) -> Option<GovernorConfig> {
    if deadline_ms.is_none() && na_budget.is_none() && mem_budget.is_none() {
        return None;
    }
    Some(GovernorConfig {
        deadline: deadline_ms.map(Duration::from_millis),
        na_budget,
        mem_budget,
        ..GovernorConfig::default()
    })
}

#[derive(Clone, Copy)]
enum Strategy {
    Seq,
    CostGuided(usize),
    RoundRobin(usize),
}

impl Strategy {
    fn name(&self) -> &'static str {
        match self {
            Strategy::Seq => "sequential",
            Strategy::CostGuided(_) => "cost-guided",
            Strategy::RoundRobin(_) => "round-robin",
        }
    }

    fn run(
        &self,
        t1: &RTree<2>,
        t2: &RTree<2>,
        config: JoinConfig,
        gov: &Governor,
    ) -> Result<DegradedJoinResult<2>, JoinError> {
        let sched = match *self {
            Strategy::Seq => Scheduler::Sequential,
            Strategy::CostGuided(t) => Scheduler::CostGuided { threads: t },
            Strategy::RoundRobin(t) => Scheduler::RoundRobin { threads: t },
        };
        JoinSession::new(t1, t2)
            .config(config)
            .scheduler(sched)
            .govern(gov)
            .run()
    }
}

/// The `governor` command. Returns `true` only when every gate holds.
pub fn governor(opts: &RunOpts, deadline_override_ms: Option<u64>) -> bool {
    // An uncreatable --obs-dir already failed in RunOpts::new — before
    // ~10s of joins, not as a warning after them.
    let (out, scale, threads) = (opts.out.as_path(), opts.scale, opts.threads);
    let obs_dir = opts.obs_dir();
    let n = (60_000.0 * scale).round().max(600.0) as usize;
    let paper_scale = scale >= 1.0;
    println!("governor: 2 x {n} objects (seeds 9600/9601), {threads} threads");

    let t1 = build_tree(&uniform::<2>(UniformConfig::new(n, DEFAULT_DENSITY, 9600)));
    let t2 = build_tree(&uniform::<2>(UniformConfig::new(n, DEFAULT_DENSITY, 9601)));
    let config = JoinConfig {
        buffer: BufferPolicy::Path,
        collect_pairs: false,
        ..JoinConfig::default()
    };
    let strategies = [
        Strategy::Seq,
        Strategy::CostGuided(threads),
        Strategy::RoundRobin(threads),
    ];

    let ok = std::cell::Cell::new(true);
    let gate = |cond: bool, msg: String| {
        if !cond {
            eprintln!("governor GATE: {msg}");
            ok.set(false);
        }
    };

    // Act 1 — nominal: full runtime and exact answer per strategy.
    let mut nominal = Vec::new();
    for s in &strategies {
        let started = Instant::now();
        match s.run(&t1, &t2, config, &Governor::unlimited()) {
            Ok(d) => nominal.push((d, started.elapsed())),
            Err(e) => {
                eprintln!("governor GATE: nominal/{}: join failed: {e}", s.name());
                return false;
            }
        }
    }
    for (s, (d, t)) in strategies.iter().zip(&nominal) {
        gate(
            d.is_exact(),
            format!("nominal/{}: an unlimited governor forfeited work", s.name()),
        );
        println!(
            "nominal/{}: {} pairs, NA {}, {:.0} ms",
            s.name(),
            d.result.pair_count,
            d.result.na_total(),
            t.as_secs_f64() * 1e3
        );
    }

    // Act 2 — admission. A 1-NA budget cannot admit a 2x60K join; the
    // typed rejection carries the Eq-6 price the decision was made at.
    let reject_cfg = GovernorConfig::default().with_na_budget(1.0);
    let predicted_na = match strategies[1].run(&t1, &t2, config, &Governor::new(reject_cfg)) {
        Err(JoinError::Rejected {
            predicted_na,
            budget,
        }) => {
            println!(
                "admission: rejected up front — Eq-6 predicted {predicted_na:.0} NA \
                 against a budget of {budget:.0}"
            );
            predicted_na
        }
        Err(e) => {
            gate(false, format!("admission: wrong error kind: {e}"));
            return false;
        }
        Ok(_) => {
            gate(false, "admission: a 1-NA budget was admitted".to_string());
            return false;
        }
    };
    // The same over-budget query under the Degrade policy: admitted,
    // but capped to the ordinal prefix half the predicted cost affords.
    let degrade_cfg = GovernorConfig::default()
        .with_na_budget(predicted_na * 0.5)
        .with_admission(AdmissionPolicy::Degrade);
    match strategies[1].run(&t1, &t2, config, &Governor::new(degrade_cfg)) {
        Ok(d) => {
            assert_well_formed(&d);
            gate(
                !d.is_exact(),
                "admission/degrade: a half-cost budget capped nothing".to_string(),
            );
            gate(
                d.result.pair_count <= nominal[1].0.result.pair_count,
                "admission/degrade: degraded run found extra pairs".to_string(),
            );
            println!(
                "admission: degrade policy kept {} of {} pairs under half the predicted cost \
                 ({} root units forfeited, estimate {:.0} pairs lost)",
                d.result.pair_count,
                nominal[1].0.result.pair_count,
                d.skips.len(),
                d.forfeited_pairs()
            );
        }
        Err(e) => gate(false, format!("admission/degrade: join failed: {e}")),
    }

    // Act 3 — deadline at half the measured runtime, per strategy (its
    // own nominal runtime: the sequential run is slower than the
    // parallel ones, and a fair deadline halves each one's own clock).
    let mut table = Report::new(
        out,
        "governor_shed",
        &[
            "act",
            "strategy",
            "deadline_ms",
            "wall_ms",
            "pairs",
            "retained",
            "skips",
            "shed_units",
            "est_lost",
            "true_lost",
            "rel_err",
        ],
    );
    table.comment(&format!(
        "2 x {n} uniform objects, D = {DEFAULT_DENSITY}, data seeds 9600/9601, \
         {threads} threads; deadline = half the strategy's nominal runtime{}",
        deadline_override_ms
            .map(|ms| format!(" (overridden: {ms} ms)"))
            .unwrap_or_default()
    ));
    table.comment(&format!(
        "forfeit envelope {:.0}% ({})",
        PAPER_ENVELOPE * 100.0,
        if paper_scale {
            "paper scale, enforced"
        } else {
            "reduced scale, report-only"
        }
    ));
    let deadline_for = |nominal_runtime: Duration| -> Duration {
        deadline_override_ms
            .map(Duration::from_millis)
            .unwrap_or_else(|| (nominal_runtime / 2).max(Duration::from_millis(1)))
    };
    let mut run_governed = |act: &str,
                            s: &Strategy,
                            baseline: &DegradedJoinResult<2>,
                            cfg: GovernorConfig,
                            deadline: Duration|
     -> Option<(DegradedJoinResult<2>, Governor)> {
        let gov = Governor::new(cfg.with_deadline(deadline));
        let started = Instant::now();
        let d = match s.run(&t1, &t2, config, &gov) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("governor GATE: {act}/{}: join failed: {e}", s.name());
                ok.set(false);
                return None;
            }
        };
        let wall = started.elapsed();
        assert_well_formed(&d);
        let true_lost = (baseline.result.pair_count - d.result.pair_count) as f64;
        let est_lost = d.forfeited_pairs();
        let shed_units = gov.summary().map(|s| s.units_shed).unwrap_or(0);
        let retained = if baseline.result.pair_count == 0 {
            1.0
        } else {
            d.result.pair_count as f64 / baseline.result.pair_count as f64
        };
        table.row(&[
            &act,
            &s.name(),
            &deadline.as_millis(),
            &format!("{:.0}", wall.as_secs_f64() * 1e3),
            &d.result.pair_count,
            &pct(retained.min(1.0)).replace('%', ""),
            &d.skips.len(),
            &shed_units,
            &int(est_lost),
            &int(true_lost),
            &if d.is_exact() {
                "-".to_string()
            } else {
                pct(rel_err(est_lost, true_lost))
            },
        ]);
        Some((d, gov))
    };

    for (s, (b, t)) in strategies.iter().zip(&nominal) {
        let deadline = deadline_for(*t);
        let Some((d, _gov)) = run_governed("deadline", s, b, GovernorConfig::default(), deadline)
        else {
            continue;
        };
        gate(
            d.result.pair_count <= b.result.pair_count,
            format!("deadline/{}: degraded run found extra pairs", s.name()),
        );
        let true_lost = (b.result.pair_count - d.result.pair_count) as f64;
        let est_lost = d.forfeited_pairs();
        println!(
            "deadline/{}: {:.0} ms deadline kept {} of {} pairs ({} units forfeited, \
             estimate {:.0} vs true {:.0} lost)",
            s.name(),
            deadline.as_secs_f64() * 1e3,
            d.result.pair_count,
            b.result.pair_count,
            d.skips.len(),
            est_lost,
            true_lost
        );
        if paper_scale {
            gate(
                !d.is_exact(),
                format!(
                    "deadline/{}: a half-runtime deadline forfeited nothing",
                    s.name()
                ),
            );
            if true_lost > 0.0 {
                gate(
                    rel_err(est_lost, true_lost) <= PAPER_ENVELOPE,
                    format!(
                        "deadline/{}: forfeit estimate {est_lost:.0} vs true {true_lost:.0} \
                         ({} > {:.0}% envelope)",
                        s.name(),
                        pct(rel_err(est_lost, true_lost)),
                        PAPER_ENVELOPE * 100.0
                    ),
                );
            }
        }
    }

    // Act 4 — shed vs truncate at the same deadline. The workload
    // switches to co-located Gaussian clusters (shared center layout,
    // disjoint objects): hot-spot units carry orders of magnitude more
    // pairs per NA than the sparse ones, which is the heterogeneity the
    // Eq-3 value ranking needs — on uniform data every unit is worth
    // about the same and forfeit choice is a coin flip. Round-robin is
    // the naive baseline on purpose: its ordinal truncation order is
    // spatial, not value-aware.
    let c1 = build_tree(&gaussian_clusters::<2>(
        ClusterConfig::new(n, DEFAULT_DENSITY, 9700)
            .with_center_seed(9700)
            .with_clusters(5)
            .with_sigma(0.025),
    ));
    let c2 = build_tree(&gaussian_clusters::<2>(
        ClusterConfig::new(n, DEFAULT_DENSITY, 9701)
            .with_center_seed(9700)
            .with_clusters(5)
            .with_sigma(0.025),
    ));
    let s = &Strategy::RoundRobin(threads);
    let started = Instant::now();
    let (cb, ct) = match s.run(&c1, &c2, config, &Governor::unlimited()) {
        Ok(d) => (d, started.elapsed()),
        Err(e) => {
            eprintln!("governor GATE: clustered nominal: join failed: {e}");
            return false;
        }
    };
    println!(
        "clustered nominal/{}: {} pairs, NA {}, {:.0} ms",
        s.name(),
        cb.result.pair_count,
        cb.result.na_total(),
        ct.as_secs_f64() * 1e3
    );
    // A third of the runtime, not half: the tighter the deficit, the
    // more it matters *which* units are forfeited, which is the choice
    // this act exists to compare. (With a lenient deadline both arms
    // finish most of the work and the comparison collapses into
    // scheduler noise.) --deadline-ms still overrides.
    let deadline = deadline_override_ms
        .map(Duration::from_millis)
        .unwrap_or_else(|| (ct / 3).max(Duration::from_millis(1)));
    // Wall-clock deadlines make single runs jittery (how far a shard
    // gets before expiry moves with scheduler noise), so each arm runs
    // five reps and is judged by its median-retention rep — the same
    // rep the CSV row and the persisted decision log come from.
    let run_act4 = |act: &str, cfg: &GovernorConfig| {
        let mut reps = Vec::new();
        for _ in 0..5 {
            let gov = Governor::new(cfg.clone().with_deadline(deadline));
            let started = Instant::now();
            let d = match s.run(&c1, &c2, config, &gov) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("governor GATE: {act}/{}: join failed: {e}", s.name());
                    ok.set(false);
                    return None;
                }
            };
            let wall = started.elapsed();
            assert_well_formed(&d);
            reps.push((d, gov, wall));
        }
        reps.sort_by_key(|(d, _, _)| d.result.pair_count);
        reps.into_iter().nth(2)
    };
    let truncate = run_act4("truncate", &GovernorConfig::default());
    let shed = run_act4("shed", &GovernorConfig::default().with_shedding(true));
    if let (Some((dt, gov_trunc, wall_t)), Some((ds, gov_shed, wall_s))) = (truncate, shed) {
        for (act, d, gov, wall) in [
            ("truncate", &dt, &gov_trunc, wall_t),
            ("shed", &ds, &gov_shed, wall_s),
        ] {
            let true_lost = (cb.result.pair_count - d.result.pair_count) as f64;
            let est_lost = d.forfeited_pairs();
            let retained = if cb.result.pair_count == 0 {
                1.0
            } else {
                d.result.pair_count as f64 / cb.result.pair_count as f64
            };
            table.row(&[
                &act,
                &"round-robin/clustered",
                &deadline.as_millis(),
                &format!("{:.0}", wall.as_secs_f64() * 1e3),
                &d.result.pair_count,
                &pct(retained.min(1.0)).replace('%', ""),
                &d.skips.len(),
                &gov.summary().map(|s| s.units_shed).unwrap_or(0),
                &int(est_lost),
                &int(true_lost),
                &if d.is_exact() {
                    "-".to_string()
                } else {
                    pct(rel_err(est_lost, true_lost))
                },
            ]);
        }
        println!(
            "shed vs truncate (clustered) at {:.0} ms: shed kept {} pairs \
             ({} units shed early), truncate kept {}",
            deadline.as_secs_f64() * 1e3,
            ds.result.pair_count,
            gov_shed.summary().map(|s| s.units_shed).unwrap_or(0),
            dt.result.pair_count
        );
        if paper_scale {
            gate(
                ds.result.pair_count > dt.result.pair_count,
                format!(
                    "shed kept {} pairs, not strictly more than truncation's {}",
                    ds.result.pair_count, dt.result.pair_count
                ),
            );
        }
        if let Some(dir) = obs_dir {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("warning: cannot create {}: {e}", dir.display());
            } else if let Some(jsonl) = gov_shed.events_jsonl() {
                let path = dir.join(sjcm_obs::GOVERNOR_EVENTS_FILE);
                match std::fs::write(&path, &jsonl) {
                    Ok(()) => println!("[governor] {}", path.display()),
                    Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
                }
            }
        }
    }
    table.finish();

    if ok.get() {
        println!("governor: all gates passed");
    }
    ok.get()
}
