//! The `bench-compare` command: diffs a freshly collected BENCH JSON
//! stream against the committed per-PR baselines and fails on real
//! regressions.
//!
//! Every bench target prints one JSON object per result (the `^{`
//! lines the CI greps into `BENCH_pr*.json`). This command joins the
//! current stream to the baselines on the `(group, bench)` key and
//! compares only the fields that are stable across machines:
//!
//! * `speedup` — the scalar-vs-batched (or equivalent) ratio; a ratio
//!   of ratios cancels the host's absolute clock, so a drop below
//!   [`SPEEDUP_FLOOR`] (> 20% regression) fails the gate.
//! * `na_imbalance` — the scheduler's work-spread; dimensionless by
//!   construction; growth beyond [`IMBALANCE_CEIL`] fails.
//!
//! Raw `*_us` timings and `*_pct` overheads are machine-speed
//! artifacts (a slower CI runner would flag every PR), so they are
//! reported for context but never gate. Benches present on only one
//! side are listed, not failed — new benches appear, retired ones
//! disappear.
//!
//! Multiple `--baseline` files are merged in order, later files
//! overriding earlier ones per key, so `BENCH_pr3.json BENCH_pr6.json`
//! composes the committed history into one baseline view.

use sjcm_obs::json::{self, Value};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// A current/baseline speedup ratio below this (i.e. more than a 20%
/// relative slowdown) fails the gate.
const SPEEDUP_FLOOR: f64 = 0.8;

/// A current/baseline NA-imbalance ratio above this (the spread grew
/// by more than 20%) fails the gate.
const IMBALANCE_CEIL: f64 = 1.2;

/// One parsed BENCH line, keyed by `(group, bench)`, holding only the
/// numeric fields.
type BenchMap = BTreeMap<(String, String), BTreeMap<String, f64>>;

/// Reads one BENCH JSON file into the map, overriding any keys already
/// present (the later-baseline-wins merge rule). Non-`{` lines are
/// skipped so a raw bench log works as well as a grepped artifact.
fn load_into(map: &mut BenchMap, path: &Path) -> Result<usize, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut lines = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if !line.trim_start().starts_with('{') {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("{}:{}: {e}", path.display(), lineno + 1))?;
        let field = |k: &str| v.get(k).and_then(Value::as_str).map(str::to_string);
        let (Some(group), Some(bench)) = (field("group"), field("bench")) else {
            return Err(format!(
                "{}:{}: BENCH line missing group/bench",
                path.display(),
                lineno + 1
            ));
        };
        let mut fields = BTreeMap::new();
        for key in ["speedup", "na_imbalance", "pairs", "na_total", "da_total"] {
            if let Some(x) = v.get(key).and_then(Value::as_f64) {
                fields.insert(key.to_string(), x);
            }
        }
        map.insert((group, bench), fields);
        lines += 1;
    }
    if lines == 0 {
        return Err(format!("{}: no BENCH JSON lines", path.display()));
    }
    Ok(lines)
}

/// Committed baselines found at the repo root when no `--baseline` was
/// given: every `BENCH_*.json` beside `Cargo.toml`, sorted so the
/// merge order is deterministic.
pub fn default_baselines() -> Vec<PathBuf> {
    let mut found: Vec<PathBuf> = std::fs::read_dir(".")
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    found.sort();
    found
}

/// The gate: `false` (with per-bench diagnostics) iff any stable
/// metric regressed beyond its threshold.
pub fn bench_compare(current: &Path, baselines: &[PathBuf]) -> bool {
    let mut base = BenchMap::new();
    for b in baselines {
        match load_into(&mut base, b) {
            Ok(n) => println!("bench-compare: {n} baseline lines from {}", b.display()),
            Err(e) => {
                eprintln!("bench-compare: {e}");
                return false;
            }
        }
    }
    let mut cur = BenchMap::new();
    match load_into(&mut cur, current) {
        Ok(n) => println!(
            "bench-compare: {n} current lines from {}",
            current.display()
        ),
        Err(e) => {
            eprintln!("bench-compare: {e}");
            return false;
        }
    }

    let mut ok = true;
    let mut compared = 0usize;
    for ((group, bench), fields) in &cur {
        let key = (group.clone(), bench.clone());
        let Some(base_fields) = base.get(&key) else {
            println!("  new   {group}/{bench} (no baseline)");
            continue;
        };
        for (metric, floor_is_bad, threshold) in [
            ("speedup", true, SPEEDUP_FLOOR),
            ("na_imbalance", false, IMBALANCE_CEIL),
        ] {
            let (Some(&c), Some(&b)) = (fields.get(metric), base_fields.get(metric)) else {
                continue;
            };
            if b <= 0.0 {
                continue;
            }
            let ratio = c / b;
            compared += 1;
            let regressed = if floor_is_bad {
                ratio < threshold
            } else {
                ratio > threshold
            };
            let verdict = if regressed { "FAIL" } else { "ok" };
            println!(
                "  {verdict:<5} {group}/{bench} {metric}: {b:.3} -> {c:.3} (x{ratio:.2}, gate {}{threshold:.1})",
                if floor_is_bad { ">=" } else { "<=" },
            );
            if regressed {
                eprintln!(
                    "bench-compare: {group}/{bench} {metric} regressed x{ratio:.2} \
                     (baseline {b:.3}, current {c:.3})"
                );
                ok = false;
            }
        }
    }
    for (group, bench) in base.keys() {
        if !cur.contains_key(&(group.clone(), bench.clone())) {
            println!("  gone  {group}/{bench} (baseline only)");
        }
    }
    if compared == 0 {
        eprintln!("bench-compare: no overlapping gated metrics between current and baselines");
        return false;
    }
    println!(
        "bench-compare: {compared} gated metrics compared, {}",
        if ok {
            "all within thresholds"
        } else {
            "REGRESSIONS found"
        }
    );
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(dir: &Path, name: &str, text: &str) -> PathBuf {
        let p = dir.join(name);
        std::fs::write(&p, text).unwrap();
        p
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("sjcm_bench_compare_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn passes_when_metrics_hold_and_fails_a_20pct_speedup_drop() {
        let d = tmpdir("gate");
        let base = write(
            &d,
            "base.json",
            r#"{"group":"g","bench":"a","speedup":2.0,"scalar_us":100}
{"group":"g","bench":"b","na_imbalance":1.1}"#,
        );
        let good = write(
            &d,
            "good.json",
            r#"{"group":"g","bench":"a","speedup":1.7,"scalar_us":900}
{"group":"g","bench":"b","na_imbalance":1.2}"#,
        );
        let bad = write(
            &d,
            "bad.json",
            r#"{"group":"g","bench":"a","speedup":1.5}
{"group":"g","bench":"b","na_imbalance":1.2}"#,
        );
        // 1.7/2.0 = 0.85 holds; raw _us timings never gate.
        assert!(bench_compare(&good, std::slice::from_ref(&base)));
        // 1.5/2.0 = 0.75 < 0.8 fails.
        assert!(!bench_compare(&bad, &[base]));
    }

    #[test]
    fn fails_an_imbalance_growth_and_later_baselines_override() {
        let d = tmpdir("merge");
        let old = write(
            &d,
            "old.json",
            r#"{"group":"g","bench":"b","na_imbalance":0.5}"#,
        );
        let new = write(
            &d,
            "new.json",
            r#"{"group":"g","bench":"b","na_imbalance":1.0}"#,
        );
        let cur = write(
            &d,
            "cur.json",
            r#"{"group":"g","bench":"b","na_imbalance":1.15}"#,
        );
        // Against the merged view the later baseline (1.0) wins:
        // 1.15/1.0 holds, while 1.15/0.5 would have failed.
        assert!(bench_compare(&cur, &[old.clone(), new]));
        assert!(!bench_compare(&cur, &[old]));
    }

    #[test]
    fn rejects_streams_with_nothing_to_gate() {
        let d = tmpdir("empty");
        let base = write(
            &d,
            "base.json",
            r#"{"group":"g","bench":"a","speedup":2.0}"#,
        );
        let cur = write(&d, "cur.json", r#"{"group":"g","bench":"z","pairs":5}"#);
        assert!(!bench_compare(&cur, &[base]));
    }
}
