//! The offline trace toolchain: `trace replay` and `trace report` over
//! the binary page-access trace the flight recorder writes into
//! `--obs-dir` (see [`crate::observability`]).
//!
//! `trace replay` is the what-if engine of the PR: it re-simulates the
//! captured access stream through buffer policies that were *not*
//! running when the trace was recorded. Replaying the recorded policy
//! must reproduce the live DA counters exactly (every event carries
//! the hit/miss verdict the live buffer gave, so a single mismatched
//! verdict is detectable); the LRU sweep then draws the DA-vs-buffer-
//! size curve — in one pass, via the Mattson stack-distance analysis,
//! cross-checked against brute-force replay at spot capacities — next
//! to the Eq 8–12 prediction carried in the trace header.
//!
//! `trace report` summarizes locality: per-tree per-level access
//! histograms and the top-k hottest pages.

use crate::common::RunOpts;
use crate::report::{int, pct, Report};
use sjcm_storage::recorder::{AccessTrace, RecordedPolicy};
use sjcm_storage::replay::{replay, StackDistance};
use sjcm_storage::{hit_ratio, AccessKind};
use std::collections::HashMap;
use std::path::Path;

/// File name of the binary access trace inside `--obs-dir`.
pub const ACCESS_TRACE_FILE: &str = "join_access_trace.bin";

/// LRU capacities the what-if sweep reports (pages per tree per
/// residency domain). 0 degenerates to no buffer; the top end is far
/// past any path length the 60K workloads produce.
const LRU_SWEEP: [u32; 8] = [0, 1, 2, 4, 8, 16, 32, 64];

/// Capacities where the Mattson curve is cross-checked against an
/// actual LRU re-simulation (the two must agree event-for-event).
const CROSS_CHECK: [u32; 3] = [1, 8, 64];

fn policy_name(p: RecordedPolicy) -> String {
    match p {
        RecordedPolicy::None => "none".into(),
        RecordedPolicy::Path => "path".into(),
        RecordedPolicy::Lru(cap) => format!("lru{cap}"),
    }
}

fn load(dir: &Path) -> Result<AccessTrace, String> {
    let path = dir.join(ACCESS_TRACE_FILE);
    let trace = AccessTrace::read(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    if trace.dropped > 0 {
        return Err(format!(
            "{}: truncated trace ({} events overwritten by the ring); \
             re-record with a larger lane capacity",
            path.display(),
            trace.dropped
        ));
    }
    if trace.events.is_empty() {
        return Err(format!("{}: trace holds no events", path.display()));
    }
    Ok(trace)
}

fn rel_err(pred: f64, actual: f64) -> f64 {
    if actual == 0.0 {
        if pred == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (pred - actual).abs() / actual
    }
}

fn fmt_ratio(hits: u64, misses: u64) -> String {
    match hit_ratio(hits, misses) {
        Some(h) => format!("{h:.4}"),
        None => "n/a".into(),
    }
}

/// The `trace replay` command. Returns `false` (with diagnostics on
/// stderr) when the trace cannot be loaded or the recorded-policy
/// replay fails to reproduce the live counters.
pub fn replay_cmd(opts: &RunOpts) -> bool {
    let Some(dir) = opts.require_obs_dir("trace replay") else {
        return false;
    };
    let out = opts.out.as_path();
    let trace = match load(dir) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace replay: {e}");
            return false;
        }
    };
    let na_live = trace.events.len() as u64;
    let da_live = trace
        .events
        .iter()
        .filter(|e| e.kind == AccessKind::Miss)
        .count() as u64;
    println!(
        "trace replay: {} events, policy {}, live NA {} DA {}",
        na_live,
        policy_name(trace.policy),
        na_live,
        da_live
    );

    // Exactness gate: re-simulating the recorded policy must hand back
    // the very hit/miss stream the live buffers produced.
    let rec = replay(&trace.events, trace.policy);
    if rec.kind_mismatches != 0 {
        eprintln!(
            "trace replay: recorded-policy replay DIVERGED from the live \
             run on {} of {} events — trace and executor disagree",
            rec.kind_mismatches, na_live
        );
        return false;
    }
    assert_eq!(rec.na_total(), na_live);
    assert_eq!(rec.da_total(), da_live);
    println!(
        "trace replay: recorded policy reproduced exactly \
         (0 verdict mismatches; DA {} = live {})",
        rec.da_total(),
        da_live
    );

    // One Mattson scan yields the full LRU curve; brute-force replay
    // spot-checks it.
    let sd = StackDistance::analyze(&trace.events);
    for cap in CROSS_CHECK {
        let brute = replay(&trace.events, RecordedPolicy::Lru(cap));
        if brute.da_total() != sd.misses_at(cap as usize) {
            eprintln!(
                "trace replay: Mattson disagrees with brute-force LRU({cap}): \
                 {} vs {}",
                sd.misses_at(cap as usize),
                brute.da_total()
            );
            return false;
        }
    }

    let mut table = Report::new(
        out,
        "trace_replay",
        &[
            "policy",
            "source",
            "na",
            "da",
            "hit_ratio",
            "da_pred",
            "rel_err",
        ],
    );
    table.comment(&format!(
        "what-if replay of {}; recorded policy {}; header predictions \
         NA {:.0} DA {:.0} (Eqs 7/11 and 10/12)",
        dir.join(ACCESS_TRACE_FILE).display(),
        policy_name(trace.policy),
        trace.na_pred,
        trace.da_pred
    ));
    table.comment(&format!(
        "lru rows from one Mattson stack-distance scan, cross-checked \
         against brute-force replay at capacities {CROSS_CHECK:?}"
    ));
    let pred_cell = |applies: bool, pred: f64, da: u64| -> (String, String) {
        if applies && pred > 0.0 {
            (int(pred), pct(rel_err(pred, da as f64)))
        } else {
            ("-".into(), "-".into())
        }
    };
    for policy in [RecordedPolicy::None, RecordedPolicy::Path] {
        let o = replay(&trace.events, policy);
        let da = o.da_total();
        let (pred, err) = pred_cell(policy == trace.policy, trace.da_pred, da);
        table.row(&[
            &policy_name(policy),
            &"replay",
            &na_live,
            &da,
            &fmt_ratio(na_live - da, da),
            &pred,
            &err,
        ]);
    }
    for cap in LRU_SWEEP {
        let da = sd.misses_at(cap as usize);
        let (pred, err) = pred_cell(trace.policy == RecordedPolicy::Lru(cap), trace.da_pred, da);
        table.row(&[
            &policy_name(RecordedPolicy::Lru(cap)),
            &"mattson",
            &na_live,
            &da,
            &fmt_ratio(na_live - da, da),
            &pred,
            &err,
        ]);
    }
    // The curve's floor: cold misses no buffer size can avoid.
    println!(
        "trace replay: {} cold misses (compulsory floor of the LRU curve), \
         saturating capacity {}",
        sd.cold_misses(),
        sd.saturating_capacity()
    );
    table.finish();
    true
}

/// The `trace report` command: per-level access histograms and the
/// top-k hottest pages. Returns `false` when the trace cannot load.
pub fn report_cmd(opts: &RunOpts) -> bool {
    const TOP_K: usize = 20;
    let Some(dir) = opts.require_obs_dir("trace report") else {
        return false;
    };
    let out = opts.out.as_path();
    let trace = match load(dir) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace report: {e}");
            return false;
        }
    };
    let domains: std::collections::HashSet<u32> = trace.events.iter().map(|e| e.corr).collect();
    println!(
        "trace report: {} events, policy {}, {} residency domains, ticks {}..{}",
        trace.events.len(),
        policy_name(trace.policy),
        domains.len(),
        trace.events.first().map_or(0, |e| e.tick),
        trace.events.last().map_or(0, |e| e.tick),
    );

    // Per-tree per-level histogram, leaf (level 0) upward.
    let mut levels: HashMap<(u8, u8), (u64, u64)> = HashMap::new();
    let mut pages: HashMap<(u8, u32), (u8, u64, u64)> = HashMap::new();
    for e in &trace.events {
        let (na, da) = levels.entry((e.tree, e.level)).or_default();
        *na += 1;
        let page = pages.entry((e.tree, e.page.0)).or_insert((e.level, 0, 0));
        page.1 += 1;
        if e.kind == AccessKind::Miss {
            *da += 1;
            page.2 += 1;
        }
    }
    let mut table = Report::new(
        out,
        "trace_levels",
        &["tree", "level", "accesses", "misses", "hit_ratio"],
    );
    table.comment("levels are 0-based from the leaves (paper level = crate level + 1)");
    let mut keys: Vec<_> = levels.keys().copied().collect();
    keys.sort_unstable();
    for (tree, level) in keys {
        let (na, da) = levels[&(tree, level)];
        table.row(&[&tree, &level, &na, &da, &fmt_ratio(na - da, da)]);
    }
    table.finish();

    let mut hot: Vec<_> = pages.into_iter().collect();
    hot.sort_by_key(|&((tree, page), (_, na, _))| (std::cmp::Reverse(na), tree, page));
    let mut table = Report::new(
        out,
        "trace_pages",
        &["rank", "tree", "page", "level", "accesses", "misses"],
    );
    table.comment(&format!("top {TOP_K} hottest pages by access count"));
    for (rank, ((tree, page), (level, na, da))) in hot.into_iter().take(TOP_K).enumerate() {
        table.row(&[&(rank + 1), &tree, &page, &level, &na, &da]);
    }
    table.finish();
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjcm_storage::recorder::PageAccessEvent;
    use sjcm_storage::PageId;

    fn event(tick: u64, page: u32, kind: AccessKind) -> PageAccessEvent {
        PageAccessEvent {
            tick,
            page: PageId(page),
            corr: 0,
            tree: 1,
            level: 0,
            kind,
        }
    }

    fn write_trace(dir: &Path, trace: &AccessTrace) {
        std::fs::create_dir_all(dir).unwrap();
        trace.write(&dir.join(ACCESS_TRACE_FILE)).unwrap();
    }

    /// RunOpts with `dir` as both the CSV output and the obs dir, the
    /// way the CLI wires `trace replay --out D --obs-dir D`.
    fn opts_for(dir: &Path) -> RunOpts {
        RunOpts::new(dir.to_path_buf(), 1.0, 1, 1998, Some(dir.to_path_buf())).unwrap()
    }

    #[test]
    fn replay_cmd_accepts_faithful_trace() {
        let dir = std::env::temp_dir().join(format!("sjcm_trace_ok_{}", std::process::id()));
        // A NoBuffer recording: every access is a miss, trivially
        // consistent with RecordedPolicy::None.
        let events = vec![
            event(0, 1, AccessKind::Miss),
            event(1, 2, AccessKind::Miss),
            event(2, 1, AccessKind::Miss),
        ];
        let trace = AccessTrace {
            policy: RecordedPolicy::None,
            dropped: 0,
            na_pred: 3.0,
            da_pred: 3.0,
            events,
        };
        write_trace(&dir, &trace);
        let opts = opts_for(&dir);
        assert!(replay_cmd(&opts));
        assert!(report_cmd(&opts));
        assert!(dir.join("trace_replay.csv").exists());
        assert!(dir.join("trace_levels.csv").exists());
        assert!(dir.join("trace_pages.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_cmd_rejects_diverging_verdicts() {
        let dir = std::env::temp_dir().join(format!("sjcm_trace_bad_{}", std::process::id()));
        // Claims Path policy but marks a re-access of the same page a
        // miss — a path buffer would have hit.
        let events = vec![event(0, 1, AccessKind::Miss), event(1, 1, AccessKind::Miss)];
        let trace = AccessTrace {
            policy: RecordedPolicy::Path,
            dropped: 0,
            na_pred: 0.0,
            da_pred: 0.0,
            events,
        };
        write_trace(&dir, &trace);
        assert!(!replay_cmd(&opts_for(&dir)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_trace_is_rejected() {
        let dir = std::env::temp_dir().join(format!("sjcm_trace_trunc_{}", std::process::id()));
        let trace = AccessTrace {
            policy: RecordedPolicy::None,
            dropped: 7,
            na_pred: 0.0,
            da_pred: 0.0,
            events: vec![event(0, 1, AccessKind::Miss)],
        };
        write_trace(&dir, &trace);
        let opts = opts_for(&dir);
        assert!(!replay_cmd(&opts));
        assert!(!report_cmd(&opts));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
