//! The `explain` command: EXPLAIN ANALYZE over the optimizer's chosen
//! plan for a fixed-seed two-dataset join query, and the `--calibrate`
//! mode that writes measured statistics back into a persisted catalog.
//!
//! `explain` builds the 60K·scale `rivers` × 20K·scale `countries`
//! workload (the cardinality ratio of the paper's unequal-size
//! experiments), registers both sets in a catalog with their measured
//! `(N, D)`, lets the [`Planner`] pick the cheapest plan for a
//! selection-join query, executes it through the instrumented
//! [`Explainer`], and prints the annotated plan tree — per operator the
//! prior estimate, the post-hoc re-estimate on measured tree
//! parameters, the measured NA/DA/rows/wall-time, and the
//! catalog-vs-model error attribution. With `--obs-dir` the same
//! analysis is persisted as the `plan_analyze.jsonl` artifact that
//! `validate-obs` checks.
//!
//! `--calibrate` starts instead from a deliberately mis-registered
//! catalog (`countries` cardinality overstated 4×, the classic stale
//! statistics failure), shows that the planner now picks a
//! synchronized-traversal plan whose per-operator analysis flags the
//! miss as *catalog*-attributed, then writes the measured `(N, D)` back
//! through [`Explainer::calibrated`], persists the corrected catalog as
//! `catalog.json`, reloads it from disk, and re-plans: the choice flips
//! to the index-nested-loop plan that also measures cheapest.

use crate::common::{rel_err, RunOpts};
use crate::report::{pct, Report};
use sjcm::explain::{AnalyzedPlan, Explainer};
use sjcm::optimizer::{Catalog, DatasetStats, JoinQuery, PhysicalPlan, Planner};
use sjcm_datagen::uniform::{generate as uniform, UniformConfig};
use sjcm_geom::{density, Rect};
use sjcm_rtree::{ObjectId, RTree, RTreeConfig};
use std::path::Path;

/// Plan-analysis JSONL artifact name inside `--obs-dir`.
pub const PLAN_ANALYZE_FILE: &str = "plan_analyze.jsonl";
/// Calibrated-catalog artifact name inside `--obs-dir`.
pub const CATALOG_FILE: &str = "catalog.json";

/// Factor by which `--calibrate` mis-registers the `countries`
/// cardinality before the calibration pass corrects it.
pub const MISREGISTRATION: f64 = 4.0;

/// Selection window of the plain `explain` mode: large enough that the
/// synchronized-traversal plan wins at every scale, putting the plan's
/// I/O mass on the operator whose Eq 10/12 residual stays inside the
/// paper's ±15% envelope at full scale. (The index-nested-loop probe
/// model is scored by the same machinery but its residual grows past
/// the envelope at 60K — the range-query estimate on *average* node
/// extents undercounts small-window probes, a variance effect Eq 1
/// cannot see — so the gated artifact demos the SJ path.)
const EXPLAIN_SELECTION: [f64; 2] = [0.4, 0.5];

/// Selection window of the `--calibrate` mode: sized to sit near the
/// INL/SJ decision boundary, so that the true catalog prices the
/// pushed-selection index-nested-loop below the synchronized traversal
/// while a 4×-overstated `countries` cardinality flips the preference
/// to a full SJ — the calibration demo's hinge.
const CALIBRATE_SELECTION: [f64; 2] = [0.2, 0.3];

struct Workload {
    rivers: Vec<Rect<2>>,
    countries: Vec<Rect<2>>,
    t_rivers: RTree<2>,
    t_countries: RTree<2>,
}

impl Workload {
    /// Fixed-seed workload: uniform `rivers` (60K·scale, D 0.3) and
    /// aspect-jittered `countries` (20K·scale, D 0.4) — seeds shared
    /// with the facade's plan-execution tests.
    fn build(scale: f64) -> Self {
        let n_rivers = (60_000.0 * scale).round().max(600.0) as usize;
        let n_countries = (20_000.0 * scale).round().max(200.0) as usize;
        let rivers = uniform::<2>(UniformConfig::new(n_rivers, 0.3, 171));
        let countries =
            uniform::<2>(UniformConfig::new(n_countries, 0.4, 172).with_aspect_jitter(0.5));
        let build = |rects: &[Rect<2>]| {
            let mut t = RTree::new(RTreeConfig::paper(2));
            for (i, r) in rects.iter().enumerate() {
                t.insert(*r, ObjectId(i as u32));
            }
            t
        };
        let t_rivers = build(&rivers);
        let t_countries = build(&countries);
        Self {
            rivers,
            countries,
            t_rivers,
            t_countries,
        }
    }

    /// A catalog carrying the measured primitive properties.
    fn true_catalog(&self) -> Catalog<2> {
        let mut cat = Catalog::new();
        cat.register(
            "rivers",
            DatasetStats::new(self.rivers.len() as u64, density(self.rivers.iter())),
        );
        cat.register(
            "countries",
            DatasetStats::new(self.countries.len() as u64, density(self.countries.iter())),
        );
        cat
    }

    /// The stale catalog of the calibration demo: `countries`
    /// cardinality overstated by [`MISREGISTRATION`].
    fn stale_catalog(&self) -> Catalog<2> {
        let mut cat = self.true_catalog();
        let n_bad = (self.countries.len() as f64 * MISREGISTRATION) as u64;
        cat.register(
            "countries",
            DatasetStats::new(n_bad, density(self.countries.iter())),
        );
        cat
    }

    fn explainer<'a>(&'a self, catalog: &'a Catalog<2>, threads: usize) -> Explainer<'a, 2> {
        Explainer::new(catalog)
            .bind("rivers", &self.t_rivers, &self.rivers)
            .bind("countries", &self.t_countries, &self.countries)
            .with_threads(threads)
    }

    fn query(&self, selection: [f64; 2]) -> JoinQuery<2> {
        let window = Rect::new([0.0, 0.0], selection).expect("valid selection window");
        JoinQuery::new(["rivers", "countries"]).with_selection("countries", window)
    }
}

/// Writes the per-operator analysis as a CSV report.
fn csv_report(out: &Path, name: &str, analysis: &AnalyzedPlan) {
    let mut table = Report::new(
        out,
        name,
        &[
            "seq",
            "op",
            "path",
            "est_io",
            "reest_io",
            "meas_io",
            "na",
            "da",
            "err",
            "catalog_err",
            "model_err",
            "est_rows",
            "rows",
            "attribution",
            "gated",
            "within",
        ],
    );
    table.comment(&format!(
        "per-operator predicted-vs-measured analysis; envelope = {:.0}% \
         on the residual model error of gated operators",
        analysis.envelope * 100.0
    ));
    for (seq, n) in analysis.nodes().iter().enumerate() {
        let path = n
            .path
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(".");
        table.row(&[
            &seq,
            &n.label,
            &path,
            &format!("{:.1}", n.estimate.own_cost),
            &format!("{:.1}", n.reestimate.own_cost),
            &n.measured.cost_io,
            &n.measured.na,
            &n.measured.da,
            &pct(n.err),
            &pct(n.catalog_err),
            &pct(n.model_err),
            &format!("{:.0}", n.estimate.cardinality),
            &n.measured.rows,
            &n.attribution.to_string(),
            &n.gated,
            &n.within.map(|b| b.to_string()).unwrap_or_default(),
        ]);
    }
    table.finish();
}

fn write_artifact(obs_dir: Option<&Path>, name: &str, contents: &str) {
    let Some(dir) = obs_dir else { return };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    match std::fs::write(&path, contents) {
        Ok(()) => println!("[plan-analyze] {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// The plain `explain` command: analyze the optimizer's chosen plan
/// under the measured catalog. Returns `true` when every gated
/// operator's residual model error stayed inside the paper's envelope.
pub fn explain(opts: &RunOpts) -> bool {
    let (out, scale, threads) = (opts.out.as_path(), opts.scale, opts.threads);
    let obs_dir = opts.obs_dir();
    let w = Workload::build(scale);
    let catalog = w.true_catalog();
    let query = w.query(EXPLAIN_SELECTION);
    let plan = match Planner::new(&catalog).best_plan(&query) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("explain: planning failed: {e}");
            return false;
        }
    };
    println!(
        "query: rivers({}) ⋈ countries({}) | window [0,0]-[{}, {}]",
        w.rivers.len(),
        w.countries.len(),
        EXPLAIN_SELECTION[0],
        EXPLAIN_SELECTION[1]
    );
    println!("\n{plan}");
    let analysis = match w.explainer(&catalog, threads).analyze(&plan) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("explain: execution failed: {e}");
            return false;
        }
    };
    println!("{analysis}");
    csv_report(out, "explain_plan", &analysis);
    write_artifact(obs_dir, PLAN_ANALYZE_FILE, &analysis.to_jsonl());
    let ok = analysis.all_within();
    if ok {
        println!(
            "explain: every gated operator within the {:.0}% envelope \
             (plan err {})",
            analysis.envelope * 100.0,
            pct(analysis.total_err())
        );
    } else {
        for n in analysis.nodes() {
            if n.within == Some(false) {
                eprintln!(
                    "explain BREACH: {} residual model error {} exceeds {:.0}%",
                    n.label,
                    pct(n.model_err),
                    analysis.envelope * 100.0
                );
            }
        }
    }
    ok
}

/// The `--calibrate` mode: stale catalog → catalog-attributed analysis
/// → measured stats written back and persisted → re-planning flips to
/// the plan that also measures cheapest. Returns `true` when the flip
/// happened and the calibrated plan measured no worse.
pub fn calibrate(opts: &RunOpts) -> bool {
    let (out, scale, threads) = (opts.out.as_path(), opts.scale, opts.threads);
    let obs_dir = opts.obs_dir();
    let w = Workload::build(scale);
    let stale = w.stale_catalog();
    let query = w.query(CALIBRATE_SELECTION);
    let n_true = w.countries.len() as u64;
    let n_stale = stale
        .get("countries")
        .map(|s| s.profile.cardinality)
        .unwrap_or(0);
    println!(
        "stale catalog: countries registered at N = {n_stale} \
         (measured {n_true}, {MISREGISTRATION}× overstated)"
    );
    let stale_plan = match Planner::new(&stale).best_plan(&query) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("explain --calibrate: planning failed: {e}");
            return false;
        }
    };
    println!("\n== plan under the stale catalog ==\n{stale_plan}");
    let explainer = w.explainer(&stale, threads);
    let stale_analysis = match explainer.analyze(&stale_plan) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("explain --calibrate: execution failed: {e}");
            return false;
        }
    };
    println!("{stale_analysis}");
    csv_report(out, "explain_calibrate_stale", &stale_analysis);

    // Write the measured statistics back and persist the correction.
    let calibrated = explainer.calibrated();
    let catalog_path = obs_dir.unwrap_or(out).join(CATALOG_FILE);
    if let Some(dir) = catalog_path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
        }
    }
    let reloaded = match calibrated
        .save(&catalog_path)
        .and_then(|()| Catalog::load(&catalog_path))
    {
        Ok(c) => {
            println!(
                "\n[catalog] calibrated statistics saved to {}",
                catalog_path.display()
            );
            c
        }
        Err(e) => {
            eprintln!("explain --calibrate: catalog persistence failed: {e}");
            return false;
        }
    };
    for (name, stats) in [("rivers", &w.rivers), ("countries", &w.countries)] {
        let s = reloaded.get(name).expect("calibrated catalog entry");
        println!(
            "[catalog] {name}: N {} → {} | D → {:.4}",
            if name == "countries" {
                n_stale
            } else {
                s.profile.cardinality
            },
            s.profile.cardinality,
            s.profile.density
        );
        debug_assert_eq!(s.profile.cardinality, stats.len() as u64);
    }

    let calibrated_plan = match Planner::new(&reloaded).best_plan(&query) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("explain --calibrate: re-planning failed: {e}");
            return false;
        }
    };
    println!("\n== plan after calibration ==\n{calibrated_plan}");
    let calibrated_analysis = match w.explainer(&reloaded, threads).analyze(&calibrated_plan) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("explain --calibrate: execution failed: {e}");
            return false;
        }
    };
    println!("{calibrated_analysis}");
    csv_report(out, "explain_calibrate_after", &calibrated_analysis);

    let flipped = format!("{stale_plan}") != format!("{calibrated_plan}");
    let stale_io = stale_analysis.measured_cost_io;
    let calibrated_io = calibrated_analysis.measured_cost_io;
    println!(
        "\ncalibration: stale plan measured {stale_io} io | calibrated plan \
         measured {calibrated_io} io | plan {}",
        if flipped { "FLIPPED" } else { "unchanged" }
    );
    summarize_flip(&stale_plan, &calibrated_plan);
    let ok = flipped && calibrated_io <= stale_io;
    if !ok {
        eprintln!(
            "explain --calibrate: expected the calibrated catalog to flip \
             re-planning onto the measured-cheapest plan \
             (flipped = {flipped}, stale {stale_io} io vs calibrated {calibrated_io} io)"
        );
    }
    ok
}

/// One-line before/after digest: estimated vs measured rank agreement.
fn summarize_flip(stale: &PhysicalPlan<2>, calibrated: &PhysicalPlan<2>) {
    let algo = |p: &PhysicalPlan<2>| {
        let text = format!("{p}");
        ["SJ", "INL", "NL"]
            .iter()
            .find(|a| text.contains(&format!("Join[{a}]")))
            .copied()
            .unwrap_or("?")
    };
    println!(
        "calibration: join algorithm {} (est {:.0}) → {} (est {:.0}), \
         estimate shift {}",
        algo(stale),
        stale.total_cost,
        algo(calibrated),
        calibrated.total_cost,
        pct(rel_err(stale.total_cost, calibrated.total_cost)),
    );
}
