//! Shared machinery of the experiment harness: the validated run
//! options every subcommand receives, tree construction, model
//! evaluation and model-vs-measurement comparison.

use sjcm_core::{join, DataProfile, LevelParams, ModelConfig, TreeParams};
use sjcm_geom::{density, Rect};
use sjcm_join::{BufferPolicy, JoinConfig, JoinResultSet, JoinSession};
use sjcm_rtree::{ObjectId, RTree, RTreeConfig};
use std::path::{Path, PathBuf};

/// The run options shared by every experiment subcommand — output
/// directory, workload scale, worker threads, the deterministic seed
/// and the optional observability artifact directory. `main` parses the
/// flags once, [`RunOpts::new`] validates them fail-fast (bad values
/// abort before any index is built), and each command receives the one
/// bundle instead of re-threading four loose parameters.
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// CSV output directory (`--out`, default `results/`).
    pub out: PathBuf,
    /// Scale factor on the paper's 20K–80K cardinalities (`--scale`).
    pub scale: f64,
    /// Worker threads for the parallel/join/chaos commands
    /// (`--threads`).
    pub threads: usize,
    /// Deterministic seed for the chaos fault plans (`--seed`).
    pub seed: u64,
    /// Observability artifact directory (`--obs-dir`); created eagerly
    /// so a run whose point is its artifacts fails before the work,
    /// not after it.
    pub obs_dir: Option<PathBuf>,
}

impl RunOpts {
    /// Validates and bundles the shared flags. Fails fast on a
    /// non-positive or non-finite `--scale`, zero `--threads`, or an
    /// uncreatable `--obs-dir`.
    pub fn new(
        out: PathBuf,
        scale: f64,
        threads: usize,
        seed: u64,
        obs_dir: Option<PathBuf>,
    ) -> Result<Self, String> {
        if !scale.is_finite() || scale <= 0.0 {
            return Err("--scale must be a positive number".into());
        }
        if threads == 0 {
            return Err("--threads must be at least 1".into());
        }
        if let Some(dir) = &obs_dir {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create --obs-dir {}: {e}", dir.display()))?;
        }
        Ok(RunOpts {
            out,
            scale,
            threads,
            seed,
            obs_dir,
        })
    }

    /// The artifact directory as a borrowed path, if one was given.
    pub fn obs_dir(&self) -> Option<&Path> {
        self.obs_dir.as_deref()
    }

    /// Like [`RunOpts::obs_dir`], but prints the shared "needs
    /// --obs-dir" diagnostic for commands that cannot run without the
    /// artifact directory (trace replay/report, validate-obs).
    pub fn require_obs_dir(&self, cmd: &str) -> Option<&Path> {
        let dir = self.obs_dir();
        if dir.is_none() {
            eprintln!("error: {cmd} needs --obs-dir DIR (from a `join --obs-dir` run)");
        }
        dir
    }
}

/// The paper's default density for the cardinality-sweep figures
/// (§4 varies D in [0.2, 0.8]; the N-sweep plots fix a mid value).
pub const DEFAULT_DENSITY: f64 = 0.5;

/// Builds a paper-configured R\*-tree (1 KiB pages) by insertion, the way
/// the paper built its indexes.
pub fn build_tree<const N: usize>(rects: &[Rect<N>]) -> RTree<N> {
    let mut tree = RTree::new(RTreeConfig::paper(N));
    for (i, r) in rects.iter().enumerate() {
        tree.insert(*r, ObjectId(i as u32));
    }
    tree
}

/// Data profile (N, D) measured from a rectangle set — the "primitive
/// properties" the model is allowed to see.
pub fn profile_of<const N: usize>(rects: &[Rect<N>]) -> DataProfile {
    DataProfile::new(rects.len() as u64, density(rects.iter()))
}

/// Converts measured per-level tree statistics into model parameters —
/// the "measured parameters" arm of the parameter-source ablation.
pub fn measured_params<const N: usize>(tree: &RTree<N>) -> TreeParams<N> {
    let stats = tree.stats();
    let levels = stats
        .levels
        .iter()
        .map(|l| {
            let mut extents = [0.0; N];
            extents.copy_from_slice(&l.avg_extents);
            LevelParams {
                nodes: l.node_count as f64,
                extents,
                density: l.density,
            }
        })
        .collect();
    TreeParams::from_levels(levels)
}

/// One model-vs-measurement comparison of a join.
#[derive(Debug, Clone, Copy)]
pub struct JoinObservation {
    /// Node accesses counted by the executor.
    pub exper_na: u64,
    /// Disk accesses counted by the executor under path buffers.
    pub exper_da: u64,
    /// Eq 7/11 estimate.
    pub anal_na: f64,
    /// Eq 10/12 estimate.
    pub anal_da: f64,
}

impl JoinObservation {
    /// Relative NA error `|anal − exper| / exper`.
    pub fn err_na(&self) -> f64 {
        rel_err(self.anal_na, self.exper_na as f64)
    }

    /// Relative DA error.
    pub fn err_da(&self) -> f64 {
        rel_err(self.anal_da, self.exper_da as f64)
    }
}

/// Relative error with a zero-measurement guard.
pub fn rel_err(estimate: f64, measured: f64) -> f64 {
    if measured == 0.0 {
        if estimate == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (estimate - measured).abs() / measured
    }
}

/// Runs the instrumented SJ join through the session front door with
/// path buffers and pair collection off — the configuration every
/// accuracy study uses, since one run then yields both NA and DA.
pub fn run_counting_join<const N: usize>(t1: &RTree<N>, t2: &RTree<N>) -> JoinResultSet {
    JoinSession::new(t1, t2)
        .config(JoinConfig {
            buffer: BufferPolicy::Path,
            collect_pairs: false,
            ..JoinConfig::default()
        })
        .run()
        .expect("ungoverned join cannot fail")
        .result
}

/// Runs the instrumented join (path buffers — one run yields both NA and
/// DA) and evaluates the analytical model from the given profiles.
pub fn observe_join<const N: usize>(
    t1: &RTree<N>,
    t2: &RTree<N>,
    prof1: DataProfile,
    prof2: DataProfile,
) -> JoinObservation {
    let result = run_counting_join(t1, t2);
    let cfg = ModelConfig::paper(N);
    let p1 = TreeParams::<N>::from_data(prof1, &cfg);
    let p2 = TreeParams::<N>::from_data(prof2, &cfg);
    JoinObservation {
        exper_na: result.na_total(),
        exper_da: result.da_total(),
        anal_na: join::join_cost_na(&p1, &p2),
        anal_da: join::join_cost_da(&p1, &p2),
    }
}

/// Like [`observe_join`] but with explicitly supplied analytical
/// parameters (used by the parameter-source ablation and the non-uniform
/// experiments, which compute parameters differently).
pub fn observe_join_with_params<const N: usize>(
    t1: &RTree<N>,
    t2: &RTree<N>,
    p1: &TreeParams<N>,
    p2: &TreeParams<N>,
) -> JoinObservation {
    let result = run_counting_join(t1, t2);
    JoinObservation {
        exper_na: result.na_total(),
        exper_da: result.da_total(),
        anal_na: join::join_cost_na(p1, p2),
        anal_da: join::join_cost_da(p1, p2),
    }
}

/// The paper's cardinality grid, scaled (scale 1.0 → 20K/40K/60K/80K).
pub fn cardinality_grid(scale: f64) -> Vec<usize> {
    [20_000.0, 40_000.0, 60_000.0, 80_000.0]
        .iter()
        .map(|n| (n * scale).round().max(100.0) as usize)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjcm_datagen::uniform::{generate, UniformConfig};

    #[test]
    fn grid_scaling() {
        assert_eq!(cardinality_grid(1.0), vec![20_000, 40_000, 60_000, 80_000]);
        assert_eq!(cardinality_grid(0.1), vec![2_000, 4_000, 6_000, 8_000]);
        // Floor prevents degenerate workloads.
        assert_eq!(cardinality_grid(1e-9), vec![100, 100, 100, 100]);
    }

    #[test]
    fn run_opts_validates_fail_fast() {
        let ok = RunOpts::new(PathBuf::from("results"), 0.5, 4, 1998, None);
        assert!(ok.is_ok());
        for bad_scale in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(
                RunOpts::new(PathBuf::from("results"), bad_scale, 4, 1998, None).is_err(),
                "scale {bad_scale} must be rejected"
            );
        }
        assert!(RunOpts::new(PathBuf::from("results"), 1.0, 0, 1998, None).is_err());
    }

    #[test]
    fn rel_err_guards_zero() {
        assert_eq!(rel_err(0.0, 0.0), 0.0);
        assert_eq!(rel_err(5.0, 0.0), f64::INFINITY);
        assert!((rel_err(110.0, 100.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn profile_and_measured_params_consistent() {
        let rects = generate::<2>(UniformConfig::new(2_000, 0.4, 1));
        let prof = profile_of(&rects);
        assert_eq!(prof.cardinality, 2_000);
        assert!((prof.density - 0.4).abs() < 1e-9);
        let tree = build_tree(&rects);
        let params = measured_params(&tree);
        assert_eq!(params.height(), tree.height());
        assert_eq!(
            params.level(params.height()).nodes,
            1.0,
            "root level has one node"
        );
    }

    #[test]
    fn observe_join_produces_consistent_bounds() {
        let a = generate::<2>(UniformConfig::new(1_500, 0.4, 2));
        let b = generate::<2>(UniformConfig::new(1_500, 0.4, 3));
        let ta = build_tree(&a);
        let tb = build_tree(&b);
        let obs = observe_join(&ta, &tb, profile_of(&a), profile_of(&b));
        assert!(obs.exper_da <= obs.exper_na);
        assert!(obs.anal_na > 0.0);
        assert!(obs.err_na().is_finite());
        assert!(obs.err_da().is_finite());
    }
}
