//! The observability-driven experiments: the traced `join` command and
//! the `validate-obs` artifact checker the CI runs against its output.
//!
//! `join` runs the fixed-seed 60K·scale uniform workload through the
//! cost-guided parallel executor with every hook armed: spans for tree
//! construction, frontier descent, scheduling and each work unit; a
//! metrics registry fed from the access statistics, the buffer
//! counters and the scheduler's steal tallies; a drift monitor
//! whose Eq 6/8–12 predictions are registered *before* the join runs,
//! checked in-flight (overruns of the ~15% envelope flag while the
//! join is still executing) and published as `drift.*` gauges at the
//! end; and, when `--obs-dir` is given, the page-access flight
//! recorder, whose binary trace feeds the offline `trace replay` /
//! `trace report` toolchain ([`crate::trace`]) alongside the Perfetto
//! export of the span tree. A watcher thread samples the
//! Eq-6-prior-seeded progress engine throughout the run — `--watch`
//! draws it live, `--obs-dir` persists the snapshot JSONL, and the
//! report prints the prior-vs-refined ETA error curve either way.

use crate::common::{build_tree, measured_params, RunOpts, DEFAULT_DENSITY};
use crate::report::{int, pct, Report};
use sjcm_core::join;
use sjcm_datagen::uniform::{generate as uniform, UniformConfig};
use sjcm_join::{
    BufferPolicy, Governor, GovernorConfig, JoinConfig, JoinObs, JoinSession, Scheduler,
};
use sjcm_obs::{
    json, validate_progress_jsonl, DriftMonitor, LevelPrior, MetricsRegistry, ProgressEngine,
    ProgressSnapshot, ProgressTracker, Tracer, PAPER_ENVELOPE,
};
use sjcm_storage::{AccessTrace, FlightRecorder, RecordedPolicy};
use std::io::Write as _;
use std::path::Path;

/// Span-JSONL artifact name inside `--obs-dir`.
pub const TRACE_FILE: &str = "join_trace.jsonl";
/// Metrics-JSONL artifact name inside `--obs-dir`.
pub const METRICS_FILE: &str = "join_metrics.jsonl";
/// Perfetto/Chrome trace-event artifact name inside `--obs-dir`.
pub const PERFETTO_FILE: &str = "join_perfetto.json";
/// Progress-snapshot JSONL artifact name inside `--obs-dir`.
pub const PROGRESS_FILE: &str = "join_progress.jsonl";

/// Sampling cadence of the progress watcher thread. The paper-scale
/// cost-guided join finishes in ~100 ms, so a 5 ms cadence lands a few
/// dozen snapshots across the run (enough to draw the prior-vs-refined
/// error curve) while a sample itself costs ~1 µs of atomic reads.
const SAMPLE_EVERY_MS: u64 = 5;

/// The `join` command: one fully observed join run. `obs_dir` names a
/// directory receiving every artifact — span JSONL, metrics JSONL, the
/// flight recorder's binary page-access trace, the Perfetto
/// trace-event export, and the progress-snapshot JSONL (omitted ⇒
/// nothing is written and the recorder stays disabled; the in-terminal
/// report still prints). `watch` redraws a live one-line progress bar
/// (fraction, ETA ± the §4.1 envelope, pair count) while the join
/// runs. Progress is always *tracked* — the watcher thread samples the
/// Eq-6-seeded [`ProgressEngine`] every [`SAMPLE_EVERY_MS`] and the
/// final report prints the prior-vs-refined ETA error curve — `watch`
/// only controls the terminal redraw.
///
/// With a [`GovernorConfig`] the join runs through the fallible twin
/// under a fresh [`Governor`]: an admission rejection or memory-budget
/// denial comes back as `Err` (the CLI exits non-zero), a deadline
/// expiry degrades the run instead of aborting it, and the governor's
/// decisions are published as `governor.*` gauges and (under
/// `--obs-dir`) as `governor_events.jsonl`. A degraded run legitimately
/// under-shoots the Eq 6/8–12 predictions, so the drift envelope is
/// only gated when the governed run stayed exact, and the metrics
/// artifact is withheld rather than written in a state `validate-obs`
/// would rightly reject (the progress stream stays valid — forfeited
/// work is retired from the denominator, so it still ends at 1.0).
///
/// Returns `Ok(true)` when every *gated* drift target landed inside the
/// paper's envelope.
pub fn join_observed(
    opts: &RunOpts,
    watch: bool,
    gov_cfg: Option<GovernorConfig>,
) -> Result<bool, String> {
    // RunOpts::new already created --obs-dir fail-fast: a run whose
    // whole point is its artifacts aborts before any work otherwise.
    let (out, scale, threads) = (opts.out.as_path(), opts.scale, opts.threads);
    let obs_dir = opts.obs_dir();
    let gov = match gov_cfg.clone() {
        Some(cfg) => Governor::new(cfg),
        None => Governor::unlimited(),
    };
    let n = (60_000.0 * scale).round().max(600.0) as usize;
    let tracer = Tracer::enabled();
    let metrics = MetricsRegistry::new();
    let drift = DriftMonitor::new(PAPER_ENVELOPE);
    let recorder = if obs_dir.is_some() {
        FlightRecorder::enabled()
    } else {
        FlightRecorder::disabled()
    };

    // Build the two indexes under their own spans.
    let build = |seed: u64, name: &str| {
        let mut span = tracer.span(name);
        let rects = uniform::<2>(UniformConfig::new(n, DEFAULT_DENSITY, seed));
        let tree = build_tree(&rects);
        span.set("n", n);
        span.set("height", tree.height() as u64);
        (rects, tree)
    };
    let (_r1, t1) = build(9600, "build-r1");
    let (_r2, t2) = build(9601, "build-r2");

    // Register the Eq 6/8–12 predictions before the join runs, from
    // *measured* tree parameters: the monitor isolates formula drift
    // from parameter-estimation error (the latter is what the
    // `param-source` command studies — near the root the analytic node
    // counts are off by whole nodes, which would swamp the per-level
    // gauges with discretization noise). Levels predicted to carry
    // less than MASS_FLOOR of their total are tracked as raw counters
    // but get no envelope target: a root-adjacent level of a few hundred accesses is a
    // small-denominator cell where ±a few node pairs reads as tens of
    // percent, and the paper's ~15% claim is about levels with mass.
    const MASS_FLOOR: f64 = 0.03;
    let p1 = measured_params(&t1);
    let p2 = measured_params(&t2);
    let targets = join::join_prediction_targets(&p1, &p2);
    let total_of = |prefix: &str| {
        targets
            .iter()
            .find(|(n, _)| n == &format!("{prefix}.total"))
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    };
    let (na_pred, da_pred) = (total_of("na"), total_of("da"));
    let mut skipped = Vec::new();
    for (name, predicted) in &targets {
        let total = if name.starts_with("na.") {
            na_pred
        } else {
            da_pred
        };
        if name.ends_with(".total") || *predicted >= MASS_FLOOR * total {
            drift.predict(name, *predicted);
        } else {
            skipped.push(name.clone());
        }
    }

    // Seed the progress engine from the same Eq-6 machinery: per-level
    // NA priors on measured parameters become the engine's initial
    // denominator, then live counters refine it as the join descends.
    let progress = ProgressTracker::enabled();
    let priors: Vec<LevelPrior> = join::join_na_priors(&p1, &p2)
        .into_iter()
        .map(|(tree, level, na)| LevelPrior { tree, level, na })
        .collect();
    let mut engine = ProgressEngine::new(&progress, &priors);
    let mut snapshots: Vec<ProgressSnapshot> = Vec::new();
    let obs = JoinObs {
        tracer: tracer.clone(),
        drift: Some(&drift),
        recorder: recorder.clone(),
        progress: progress.clone(),
    };
    let config = JoinConfig {
        buffer: BufferPolicy::Path,
        collect_pairs: false,
        ..JoinConfig::default()
    };
    let degraded = std::thread::scope(|s| {
        let gov = &gov;
        let worker = s.spawn(|| {
            JoinSession::new(&t1, &t2)
                .config(config)
                .scheduler(Scheduler::CostGuided { threads })
                .observe(&obs)
                .govern(gov)
                .run()
        });
        while !worker.is_finished() {
            std::thread::sleep(std::time::Duration::from_millis(SAMPLE_EVERY_MS));
            let snap = engine.sample();
            if watch {
                print!("\r{}", snap.terminal_line());
                let _ = std::io::stdout().flush();
            }
            snapshots.push(snap);
        }
        worker.join().expect("join worker panicked")
    });
    // Persist the decision log before the error path: a rejected
    // admission is exactly when the events file is most interesting.
    let write_governor_events = |dir: &Path| {
        if let Some(jsonl) = gov.events_jsonl() {
            let path = dir.join(sjcm_obs::GOVERNOR_EVENTS_FILE);
            match std::fs::write(&path, &jsonl) {
                Ok(()) => println!("[governor] {}", path.display()),
                Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
            }
        }
    };
    let degraded = match degraded {
        Ok(d) => d,
        Err(e) => {
            if let Some(dir) = obs_dir {
                if std::fs::create_dir_all(dir).is_ok() {
                    write_governor_events(dir);
                }
            }
            return Err(e.to_string());
        }
    };
    let exact = degraded.is_exact();
    if !exact {
        println!(
            "governor: degraded run — {} of {} root units forfeited, \
             forfeited-pairs estimate {:.0}",
            degraded.skips.len(),
            gov.summary().map(|s| s.units_total).unwrap_or(0),
            degraded.forfeited_pairs()
        );
    }
    let result = degraded.result;
    // One last sample after `finish()`: fraction is exactly 1.0 and the
    // validator requires the stream to end that way.
    let final_snap = engine.sample();
    if watch {
        println!("\r{}", final_snap.terminal_line());
    }
    snapshots.push(final_snap);

    // Final observations: the measured per-level and total NA/DA under
    // the same names the predictions were registered with.
    for (name, actual) in result.drift_observations() {
        drift.observe(&name, actual);
    }

    // Feed the registry: access stats, buffer counters, steal tallies.
    for (name, value) in result.drift_observations() {
        metrics.counter_add(&format!("join.{name}"), value as u64);
    }
    for (tree, b, s) in [
        (1, &result.buffers1, &result.stats1),
        (2, &result.buffers2, &result.stats2),
    ] {
        metrics.counter_add(&format!("buffer.r{tree}.hits"), b.hits);
        metrics.counter_add(&format!("buffer.r{tree}.misses"), b.misses);
        metrics.counter_add(&format!("buffer.r{tree}.evictions"), b.evictions);
        if let Some(h) = s.hit_ratio() {
            metrics.gauge_set(&format!("buffer.r{tree}.hit_ratio"), h);
        }
    }
    for s in &result.steals {
        metrics.counter_add("parallel.units_executed", s.units_executed);
        metrics.counter_add("parallel.units_stolen", s.units_stolen);
        metrics.counter_add("parallel.steal.attempts", s.steal_attempts);
        for &d in &s.steal_queue_depths {
            metrics.histogram_record("parallel.steal.queue_depth", d as f64);
        }
    }
    metrics.gauge_set("parallel.na_imbalance", result.na_imbalance());
    drift.publish(&metrics);

    // Governor decisions as gauges, under the shared `governor.*`
    // names — absent entirely on an ungoverned run.
    if let (Some(summary), Some(cfg)) = (gov.summary(), gov_cfg.as_ref()) {
        use sjcm_obs::governor as govm;
        metrics.gauge_set(govm::GOV_ADMITTED, 1.0);
        metrics.gauge_set(govm::GOV_PREDICTED_NA, summary.predicted_na);
        if let Some(b) = cfg.na_budget {
            metrics.gauge_set(govm::GOV_NA_BUDGET, b);
        }
        if let Some(d) = cfg.deadline {
            metrics.gauge_set(govm::GOV_DEADLINE_MS, d.as_secs_f64() * 1e3);
        }
        metrics.gauge_set(govm::GOV_UNITS_TOTAL, summary.units_total as f64);
        metrics.gauge_set(govm::GOV_UNITS_EXECUTED, summary.units_executed as f64);
        metrics.gauge_set(govm::GOV_UNITS_FORFEITED, summary.units_forfeited as f64);
        metrics.gauge_set(govm::GOV_UNITS_SHED, summary.units_shed as f64);
        metrics.gauge_set(govm::GOV_MEM_PEAK_BYTES, summary.mem_peak_bytes as f64);
    }

    // The report section: drift table + span summary.
    let mut table = Report::new(
        out,
        "join_drift",
        &[
            "target",
            "predicted",
            "actual",
            "rel_err",
            "within",
            "overrun",
        ],
    );
    table.comment(&format!(
        "model-vs-actual drift, envelope = {:.0}% (paper section 4.1); \
         predictions are Eq 6/8-12 on measured tree parameters",
        PAPER_ENVELOPE * 100.0
    ));
    if !skipped.is_empty() {
        table.comment(&format!(
            "levels under {:.0}% of predicted total mass monitored as raw \
             counters only (small-denominator cells): {}",
            MASS_FLOOR * 100.0,
            skipped.join(" ")
        ));
    }
    for s in drift.samples() {
        table.row(&[
            &s.name,
            &int(s.predicted),
            &int(s.actual),
            &pct(s.rel_err),
            &s.within,
            &s.overrun,
        ]);
    }
    table.finish();

    // The prior-vs-refined accuracy curve: at each sampled fraction,
    // how far the engine's live total-work estimate sat from the true
    // final work (the last snapshot's done_work — by then every counter
    // is settled). Early rows are pure Eq-6 prior; late rows are
    // observation-dominated. EXPERIMENTS.md quotes this table.
    let true_work = snapshots.last().map(|s| s.done_work).unwrap_or(0.0);
    let mut eta_table = Report::new(
        out,
        "join_eta",
        &[
            "t_us",
            "fraction",
            "est_total_work",
            "eta_us",
            "err_vs_final",
        ],
    );
    eta_table.comment(&format!(
        "live total-work estimate vs the settled final work ({true_work:.0} NA); \
         the first rows are Eq-6-prior-dominated, the last observation-dominated"
    ));
    for s in &snapshots {
        let err = if true_work > 0.0 {
            (s.est_total_work - true_work).abs() / true_work
        } else {
            0.0
        };
        eta_table.row(&[
            &s.t_us.to_string(),
            &format!("{:.4}", s.fraction),
            &int(s.est_total_work),
            &s.eta_us.map(|e| e.to_string()).unwrap_or_default(),
            &pct(err),
        ]);
    }
    eta_table.finish();

    // Run-state introspection: the same RunState the snapshot API
    // serves, printed once at the end as a worker/buffer digest.
    let state = engine.run_state(Some(&drift));
    println!("\n== run state ==");
    println!(
        "fraction {:.4}  na_done {}  pairs {}  drift breaches {}",
        state.snapshot.fraction, state.snapshot.na_done, state.snapshot.pairs, state.drift_breaches
    );
    if let Some(h) = state.buffer_hit_ratio {
        println!("buffer hit ratio {:.3}", h);
    }
    for (i, w) in state.workers.iter().enumerate() {
        println!(
            "worker {i}: {}/{} units, cost {}/{} retired",
            w.units_done,
            w.planned_units,
            w.planned_cost - w.remaining_cost,
            w.planned_cost
        );
    }
    println!("\n== span tree ==");
    print!("{}", tracer.tree_summary());

    if let Some(dir) = obs_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
        } else {
            let trace_path = dir.join(TRACE_FILE);
            match tracer.write_jsonl(&trace_path) {
                Ok(()) => println!("[trace] {}", trace_path.display()),
                Err(e) => eprintln!("warning: cannot write {}: {e}", trace_path.display()),
            }
            // A deadline-degraded run legitimately undershoots the Eq
            // 6/8–12 predictions, so its drift gauges would (rightly)
            // fail `validate-obs`'s envelope contract: withhold the
            // metrics file instead of writing a known-bad artifact.
            if exact {
                let metrics_path = dir.join(METRICS_FILE);
                match metrics.write_jsonl(&metrics_path) {
                    Ok(()) => println!("[metrics] {}", metrics_path.display()),
                    Err(e) => eprintln!("warning: cannot write {}: {e}", metrics_path.display()),
                }
            } else {
                println!("[metrics] withheld: degraded run breaches the drift contract");
            }
            write_governor_events(dir);
            // The binary page-access trace: the join ran under the
            // path-buffer policy, and the header carries the Eq 7/11
            // and 10/12 totals so `trace replay` can draw its what-if
            // curve against the model.
            let access = recorder.into_trace(RecordedPolicy::Path, na_pred, da_pred);
            let access_path = dir.join(crate::trace::ACCESS_TRACE_FILE);
            match access.write(&access_path) {
                Ok(()) => println!(
                    "[access-trace] {} ({} events, {} dropped)",
                    access_path.display(),
                    access.events.len(),
                    access.dropped
                ),
                Err(e) => eprintln!("warning: cannot write {}: {e}", access_path.display()),
            }
            let perfetto_path = dir.join(PERFETTO_FILE);
            match sjcm_obs::write_chrome_trace(&tracer, &perfetto_path) {
                Ok(()) => println!("[perfetto] {}", perfetto_path.display()),
                Err(e) => eprintln!("warning: cannot write {}: {e}", perfetto_path.display()),
            }
            let progress_path = dir.join(PROGRESS_FILE);
            let jsonl: String = snapshots.iter().map(|s| s.to_json() + "\n").collect();
            match std::fs::write(&progress_path, &jsonl) {
                Ok(()) => println!(
                    "[progress] {} ({} snapshots)",
                    progress_path.display(),
                    snapshots.len()
                ),
                Err(e) => eprintln!("warning: cannot write {}: {e}", progress_path.display()),
            }
        }
    }

    let ok = drift.all_within();
    if ok {
        println!(
            "drift: all {} targets within the {:.0}% envelope",
            drift.target_count(),
            PAPER_ENVELOPE * 100.0
        );
    } else if !exact {
        println!(
            "drift: {} breach(es) not gated — the governor forfeited work, \
             so undershooting the full-run predictions is expected",
            drift.breaches().len()
        );
    } else {
        for b in drift.breaches() {
            eprintln!(
                "drift BREACH: {} predicted {:.0} actual {:.0} ({}{})",
                b.name,
                b.predicted,
                b.actual,
                pct(b.rel_err),
                if b.overrun { ", flagged in-flight" } else { "" }
            );
        }
    }
    Ok(ok || !exact)
}

/// The `validate-obs` command: checks every artifact present in
/// `--obs-dir` — the span and metrics JSONL files (every line parses,
/// the required keys are present, the recorded drift stayed inside the
/// envelope: `drift.*` gauges ≤ `drift.envelope` and the
/// `drift.breaches` counter is 0), the chaos campaigns' metrics file
/// under the same contract, the binary page-access trace
/// (magic/version/size/tick-monotonicity via [`AccessTrace::read`],
/// plus a truncation check on the ring-drop counter), the Perfetto
/// export (well-formed Chrome trace-event JSON), the progress
/// snapshot stream (monotone time and fraction, finishing at exactly
/// 1.0, via [`validate_progress_jsonl`]), the `explain` command's
/// per-operator plan analysis (`plan_analyze.jsonl`: schema'd lines,
/// DA ≤ NA, no gated operator breaching the envelope), the
/// calibrated `catalog.json` (round-trips through the optimizer's
/// parser with at least one dataset), and the governor's decision log
/// (`governor_events.jsonl`: schema'd lines, known kinds, monotone
/// time, ending on a terminal decision, via
/// [`sjcm_obs::validate_governor_jsonl`]). Returns `false` (with
/// diagnostics on stderr) on any violation, including an obs dir with
/// nothing to validate.
pub fn validate_obs(dir: &Path) -> bool {
    let ok = std::cell::Cell::new(true);
    let fail = |msg: String| {
        eprintln!("validate-obs: {msg}");
        ok.set(false);
    };
    let present = |name: &str| {
        let p = dir.join(name);
        p.is_file().then_some(p)
    };
    let trace = present(TRACE_FILE);
    let metrics = present(METRICS_FILE);
    let chaos_metrics = present(crate::chaos::CHAOS_METRICS_FILE);
    let access = present(crate::trace::ACCESS_TRACE_FILE);
    let perfetto = present(PERFETTO_FILE);
    let progress = present(PROGRESS_FILE);
    let plan_analyze = present(crate::explain::PLAN_ANALYZE_FILE);
    let catalog = present(crate::explain::CATALOG_FILE);
    let governor_events = present(sjcm_obs::GOVERNOR_EVENTS_FILE);
    if [
        &trace,
        &metrics,
        &chaos_metrics,
        &access,
        &perfetto,
        &progress,
        &plan_analyze,
        &catalog,
        &governor_events,
    ]
    .iter()
    .all(|a| a.is_none())
    {
        fail(format!(
            "no artifacts found in {}; expected any of {TRACE_FILE}, \
             {METRICS_FILE}, {}, {}, {PERFETTO_FILE}, {PROGRESS_FILE}, {}, {}, {}",
            dir.display(),
            crate::chaos::CHAOS_METRICS_FILE,
            crate::trace::ACCESS_TRACE_FILE,
            crate::explain::PLAN_ANALYZE_FILE,
            crate::explain::CATALOG_FILE,
            sjcm_obs::GOVERNOR_EVENTS_FILE
        ));
        return false;
    }

    if let Some(path) = &trace {
        match std::fs::read_to_string(path) {
            Err(e) => fail(format!("cannot read {}: {e}", path.display())),
            Ok(text) => {
                let mut spans = 0usize;
                for (lineno, line) in text.lines().enumerate() {
                    let v = match json::parse(line) {
                        Ok(v) => v,
                        Err(e) => {
                            fail(format!("{}:{}: {e}", path.display(), lineno + 1));
                            continue;
                        }
                    };
                    for key in [
                        "type", "id", "parent", "name", "start_us", "dur_us", "fields",
                    ] {
                        if v.get(key).is_none() {
                            fail(format!(
                                "{}:{}: span line missing key {key}",
                                path.display(),
                                lineno + 1
                            ));
                        }
                    }
                    spans += 1;
                }
                if spans == 0 {
                    fail(format!("{}: no spans recorded", path.display()));
                } else {
                    println!("validate-obs: {} spans ok in {}", spans, path.display());
                }
            }
        }
    }

    if let Some(path) = &metrics {
        check_metrics_file(path, &fail);
    }
    if let Some(path) = &chaos_metrics {
        check_metrics_file(path, &fail);
    }

    if let Some(path) = &access {
        // AccessTrace::read already rejects bad magic/version/padding,
        // truncated or oversized byte counts, invalid event encodings
        // and non-monotonic ticks; on top of that an artifact whose
        // rings overwrote events is not replayable and fails here.
        match AccessTrace::read(path) {
            Err(e) => fail(format!("{}: {e}", path.display())),
            Ok(t) if t.dropped > 0 => fail(format!(
                "{}: truncated trace ({} events overwritten by the ring)",
                path.display(),
                t.dropped
            )),
            Ok(t) if t.events.is_empty() => {
                fail(format!("{}: trace holds no events", path.display()))
            }
            Ok(t) => println!(
                "validate-obs: {} access events ok in {}",
                t.events.len(),
                path.display()
            ),
        }
    }

    if let Some(path) = &perfetto {
        match std::fs::read_to_string(path) {
            Err(e) => fail(format!("cannot read {}: {e}", path.display())),
            Ok(text) => match sjcm_obs::validate_chrome_trace(&text) {
                Err(e) => fail(format!("{}: {e}", path.display())),
                Ok(events) => println!(
                    "validate-obs: {} trace events ok in {}",
                    events,
                    path.display()
                ),
            },
        }
    }

    // The plan-analysis stream: every line parses with the
    // sjcm.plan_analyze.v1 schema, counters are internally consistent
    // (DA never exceeds NA), and no gated operator's residual model
    // error breached the envelope (`within` is true or null — staleness
    // demos legitimately record catalog-attributed misses, but a
    // *model* breach fails the artifact).
    if let Some(path) = &plan_analyze {
        check_plan_analyze_file(path, &fail);
    }

    // The calibrated catalog round-trips through the optimizer's own
    // parser, which enforces dimensionality and entry shape.
    if let Some(path) = &catalog {
        match sjcm::optimizer::Catalog::<2>::load(path) {
            Err(e) => fail(format!("{}: {e}", path.display())),
            Ok(c) => {
                let n = c.iter().count();
                if n == 0 {
                    fail(format!("{}: catalog holds no datasets", path.display()));
                } else {
                    println!(
                        "validate-obs: {} catalog entries ok in {}",
                        n,
                        path.display()
                    );
                }
            }
        }
    }

    // The governor's decision log: every line parses with the
    // sjcm.governor.v1 schema, kinds are known, time is monotone, and
    // the log ends on a terminal decision (finish/reject/budget) — a
    // log that just stops mid-run is a crashed governor, not a record.
    if let Some(path) = &governor_events {
        match std::fs::read_to_string(path) {
            Err(e) => fail(format!("cannot read {}: {e}", path.display())),
            Ok(text) => match sjcm_obs::validate_governor_jsonl(&text) {
                Err(e) => fail(format!("{}: {e}", path.display())),
                Ok(lines) => println!(
                    "validate-obs: {} governor events ok in {}",
                    lines,
                    path.display()
                ),
            },
        }
    }

    // The progress stream's contract lives in the obs crate: every line
    // parses with the snapshot keys, time and fraction are monotone,
    // and the stream ends finished with fraction exactly 1.0.
    if let Some(path) = &progress {
        match std::fs::read_to_string(path) {
            Err(e) => fail(format!("cannot read {}: {e}", path.display())),
            Ok(text) => match validate_progress_jsonl(&text) {
                Err(e) => fail(format!("{}: {e}", path.display())),
                Ok(lines) => println!(
                    "validate-obs: {} progress snapshots ok in {}",
                    lines,
                    path.display()
                ),
            },
        }
    }
    ok.get()
}

/// Validates one metrics-JSONL artifact — shared by the join command's
/// metrics file and the chaos campaigns' (both follow the same
/// contract): every line parses with the type/name/value shape, each
/// `drift.*` gauge stays inside the published `drift.envelope`, and the
/// `drift.breaches` counter is zero.
/// Validates the `explain` command's `plan_analyze.jsonl`: every line
/// parses with the `sjcm.plan_analyze.v1` schema and its required keys,
/// per-operator DA never exceeds NA, sequence numbers are contiguous
/// from zero, and `"within"` is never `false` — a gated operator whose
/// residual model error breached the envelope fails the artifact
/// (catalog-attributed misses are legal: they are what `--calibrate`
/// exists to demonstrate).
fn check_plan_analyze_file(path: &Path, fail: &dyn Fn(String)) {
    let text = match std::fs::read_to_string(path) {
        Err(e) => return fail(format!("cannot read {}: {e}", path.display())),
        Ok(t) => t,
    };
    let mut lines = 0usize;
    let mut ok = true;
    for (lineno, line) in text.lines().enumerate() {
        let mut line_fail = |msg: String| {
            fail(format!("{}:{}: {msg}", path.display(), lineno + 1));
            ok = false;
        };
        let v = match json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                line_fail(e.to_string());
                continue;
            }
        };
        match v.get("schema").and_then(|s| s.as_str()) {
            Some("sjcm.plan_analyze.v1") => {}
            other => line_fail(format!(
                "unexpected schema {:?} (want sjcm.plan_analyze.v1)",
                other.unwrap_or("<missing>")
            )),
        }
        for key in [
            "seq",
            "op",
            "path",
            "est_cost",
            "reest_cost",
            "est_rows",
            "na",
            "da",
            "cost_io",
            "rows",
            "wall_us",
            "err",
            "catalog_err",
            "model_err",
            "attribution",
            "gated",
            "within",
            "envelope",
        ] {
            if v.get(key).is_none() {
                line_fail(format!("plan line missing key {key}"));
            }
        }
        let num = |key: &str| v.get(key).and_then(|x| x.as_f64());
        if let (Some(na), Some(da)) = (num("na"), num("da")) {
            if da > na {
                line_fail(format!("da {da} exceeds na {na}"));
            }
        }
        if num("seq") != Some(lines as f64) {
            line_fail(format!("non-contiguous seq (expected {lines})"));
        }
        if v.get("within").and_then(|w| w.as_bool()) == Some(false) {
            line_fail(format!(
                "operator {} breached the envelope (within = false)",
                v.get("op").and_then(|o| o.as_str()).unwrap_or("?")
            ));
        }
        lines += 1;
    }
    if lines == 0 {
        fail(format!("{}: no plan operators recorded", path.display()));
        ok = false;
    }
    if ok {
        println!(
            "validate-obs: {} plan operators ok in {}",
            lines,
            path.display()
        );
    }
}

fn check_metrics_file(path: &Path, fail: &dyn Fn(String)) {
    let text = match std::fs::read_to_string(path) {
        Err(e) => return fail(format!("cannot read {}: {e}", path.display())),
        Ok(t) => t,
    };
    let file_ok = std::cell::Cell::new(true);
    let fail = |msg: String| {
        file_ok.set(false);
        fail(msg);
    };
    let mut lines = 0usize;
    let mut envelope = None;
    let mut drift_gauges: Vec<(String, Option<f64>)> = Vec::new();
    let mut breaches = None;
    for (lineno, line) in text.lines().enumerate() {
        let v = match json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                fail(format!("{}:{}: {e}", path.display(), lineno + 1));
                continue;
            }
        };
        lines += 1;
        let kind = v.get("type").and_then(|t| t.as_str()).unwrap_or("");
        let name = v.get("name").and_then(|n| n.as_str()).unwrap_or("");
        if name.is_empty() || kind.is_empty() {
            fail(format!(
                "{}:{}: metric line missing type/name",
                path.display(),
                lineno + 1
            ));
            continue;
        }
        match kind {
            "counter" | "gauge" => {
                if v.get("value").is_none() {
                    fail(format!(
                        "{}:{}: {kind} missing value",
                        path.display(),
                        lineno + 1
                    ));
                }
            }
            "histogram" => {
                let bounds = v.get("bounds").and_then(|b| b.as_arr());
                let counts = v.get("counts").and_then(|c| c.as_arr());
                match (bounds, counts) {
                    (Some(b), Some(c)) if c.len() == b.len() + 1 => {}
                    _ => fail(format!(
                        "{}:{}: malformed histogram",
                        path.display(),
                        lineno + 1
                    )),
                }
            }
            other => fail(format!(
                "{}:{}: unknown metric type {other}",
                path.display(),
                lineno + 1
            )),
        }
        let value = v.get("value").and_then(|x| x.as_f64());
        if kind == "gauge" && name == "drift.envelope" {
            envelope = value;
        } else if kind == "gauge" && name.starts_with("drift.") {
            drift_gauges.push((name.to_string(), value));
        } else if kind == "counter" && name == "drift.breaches" {
            breaches = value;
        }
    }
    if lines == 0 {
        fail(format!("{}: no metrics recorded", path.display()));
    }
    let env = envelope.unwrap_or(PAPER_ENVELOPE);
    if envelope.is_none() {
        fail(format!("{}: drift.envelope gauge missing", path.display()));
    }
    if drift_gauges.is_empty() {
        fail(format!("{}: no drift.* gauges recorded", path.display()));
    }
    for (name, err) in &drift_gauges {
        match err {
            Some(e) if *e <= env => {}
            Some(e) => fail(format!(
                "{name} = {:.1}% exceeds the {:.1}% envelope",
                e * 100.0,
                env * 100.0
            )),
            None => fail(format!("{name} is null (non-finite relative error)")),
        }
    }
    match breaches {
        Some(0.0) => {}
        Some(b) => fail(format!("drift.breaches = {b}, expected 0")),
        None => fail(format!(
            "{}: drift.breaches counter missing",
            path.display()
        )),
    }
    if file_ok.get() {
        println!(
            "validate-obs: {} metric lines ok in {} ({} drift gauges within {:.0}%)",
            lines,
            path.display(),
            drift_gauges.len(),
            env * 100.0
        );
    }
}
