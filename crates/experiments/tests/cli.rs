//! End-to-end checks of the `experiments` binary's error surface.
//!
//! These exercise the paths a unit test can't: argument parsing, exit
//! codes, and the stderr contract when an artifact directory is bad.
//! Each test shells out to the compiled binary via
//! `CARGO_BIN_EXE_experiments`, so they run against exactly what ships.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
}

fn tmp_out(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sjcm_cli_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// `validate-obs` on a directory with no artifacts must fail and name
/// the files it looked for, so a misconfigured CI step is diagnosable
/// from the log alone.
#[test]
fn validate_obs_missing_dir_fails_with_message() {
    let missing = std::env::temp_dir().join(format!("sjcm_cli_missing_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&missing);
    let out = bin()
        .args(["validate-obs", "--obs-dir"])
        .arg(&missing)
        .output()
        .expect("spawn experiments");
    assert!(!out.status.success(), "expected nonzero exit");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("no artifacts found"),
        "stderr should explain what was missing, got: {stderr}"
    );
    assert!(
        stderr.contains("governor_events.jsonl"),
        "stderr should list the governor artifact among expectations, got: {stderr}"
    );
}

/// `join --obs-dir` pointing somewhere that cannot be created must
/// fail up front rather than run the join and drop the artifacts.
#[test]
fn join_uncreatable_obs_dir_fails_fast() {
    let out_dir = tmp_out("join_badobs");
    let out = bin()
        .args([
            "join",
            "--scale",
            "0.05",
            "--obs-dir",
            "/dev/null/nope",
            "--out",
        ])
        .arg(&out_dir)
        .output()
        .expect("spawn experiments");
    assert!(!out.status.success(), "expected nonzero exit");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot create --obs-dir"),
        "stderr should name the bad directory, got: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&out_dir);
}

/// The governed flags reject nonsense values during parsing, before
/// any data is generated.
#[test]
fn join_rejects_nonpositive_na_budget() {
    let out_dir = tmp_out("join_badbudget");
    let out = bin()
        .args(["join", "--scale", "0.05", "--na-budget", "-3", "--out"])
        .arg(&out_dir)
        .output()
        .expect("spawn experiments");
    assert!(!out.status.success(), "expected nonzero exit");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--na-budget"),
        "stderr should name the offending flag, got: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&out_dir);
}

/// An impossible NA budget with the default reject policy is a typed
/// admission failure: exit 1 and a message naming prediction vs budget.
#[test]
fn join_admission_rejection_is_reported() {
    let out_dir = tmp_out("join_reject");
    let out = bin()
        .args(["join", "--scale", "0.05", "--na-budget", "1", "--out"])
        .arg(&out_dir)
        .output()
        .expect("spawn experiments");
    assert!(!out.status.success(), "expected nonzero exit");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("rejected") || stderr.contains("budget"),
        "stderr should describe the admission rejection, got: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&out_dir);
}

/// Unknown commands exit nonzero and point at the help text.
#[test]
fn unknown_command_fails() {
    let out = bin()
        .arg("no-such-command")
        .output()
        .expect("spawn experiments");
    assert!(!out.status.success(), "expected nonzero exit");
}
