//! Governor decision log: the JSONL event stream and `governor.*`
//! metric names the query governor publishes through.
//!
//! The governor (in `sjcm-join`) makes a small number of *decisions*
//! per query — admit or reject, arm a deadline, shed pending units,
//! expire, deny a memory reservation, finish — and each decision is one
//! [`GovernorEvent`] here. Events carry a monotone microsecond
//! timestamp relative to the governor's own epoch, a kind from the
//! closed [`KNOWN_KINDS`] set, a numeric payload and a free-form
//! detail, and serialize to one JSONL line each under the
//! [`GOVERNOR_SCHEMA`] tag. [`validate_governor_jsonl`] is the
//! `validate-obs` gate for the `governor_events.jsonl` artifact.
//!
//! This module lives in `sjcm-obs` (not `sjcm-join`) for the same
//! layering reason the progress hub does: the experiment harness and
//! the validators consume the stream without linking the executors.

use crate::json::{self, Value};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Schema tag stamped on every governor JSONL line.
pub const GOVERNOR_SCHEMA: &str = "sjcm.governor.v1";

/// Canonical file name of the governor event artifact.
pub const GOVERNOR_EVENTS_FILE: &str = "governor_events.jsonl";

/// Event kinds a governor may emit, in rough lifecycle order. The
/// validator rejects anything outside this set.
pub const KNOWN_KINDS: &[&str] = &[
    "admit", "reject", "arm", "shed", "expire", "budget", "finish",
];

/// Kinds that legally terminate a stream: a run either finishes (even
/// degraded) or dies at admission / on a denied memory reservation.
pub const TERMINAL_KINDS: &[&str] = &["finish", "reject", "budget"];

/// `1` while a governed query was admitted, `0` when it was rejected.
pub const GOV_ADMITTED: &str = "governor.admitted";
/// Eq-6 predicted NA the admission decision was priced at.
pub const GOV_PREDICTED_NA: &str = "governor.predicted_na";
/// The configured NA budget (absent ⇒ gauge not published).
pub const GOV_NA_BUDGET: &str = "governor.na_budget";
/// The configured deadline in milliseconds.
pub const GOV_DEADLINE_MS: &str = "governor.deadline_ms";
/// Root work units the governed plan held.
pub const GOV_UNITS_TOTAL: &str = "governor.units.total";
/// Units executed to completion.
pub const GOV_UNITS_EXECUTED: &str = "governor.units.executed";
/// Units forfeited (deadline, cancellation point, or shed).
pub const GOV_UNITS_FORFEITED: &str = "governor.units.forfeited";
/// Units preemptively shed by the ETA overrun predictor.
pub const GOV_UNITS_SHED: &str = "governor.units.shed";
/// High-water mark of metered arena bytes.
pub const GOV_MEM_PEAK_BYTES: &str = "governor.mem.peak_bytes";

/// One governor decision.
#[derive(Debug, Clone, PartialEq)]
pub struct GovernorEvent {
    /// Microseconds since the governor was created (monotone).
    pub t_us: u64,
    /// One of [`KNOWN_KINDS`].
    pub kind: &'static str,
    /// Numeric payload (meaning depends on the kind: predicted NA for
    /// admit/reject, shed unit count for shed, executed units for
    /// finish, denied bytes for budget, …).
    pub value: f64,
    /// Human-readable context.
    pub detail: String,
}

/// Thread-safe, append-only event collector with a fixed epoch.
/// Cloning shares the buffer (one log per governed query).
#[derive(Debug, Clone)]
pub struct GovernorLog {
    epoch: Instant,
    events: Arc<Mutex<Vec<GovernorEvent>>>,
}

impl Default for GovernorLog {
    fn default() -> Self {
        Self::new()
    }
}

impl GovernorLog {
    /// A fresh log; `t_us` of subsequent events counts from now.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            events: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Appends one event stamped with the current offset from the
    /// epoch. Timestamps are clamped monotone (two decisions inside
    /// the same microsecond keep their append order).
    pub fn record(&self, kind: &'static str, value: f64, detail: impl Into<String>) {
        debug_assert!(KNOWN_KINDS.contains(&kind), "unknown governor kind {kind}");
        let mut events = self.events.lock().unwrap_or_else(|p| p.into_inner());
        let now = self.epoch.elapsed().as_micros() as u64;
        let t_us = events.last().map_or(now, |e| now.max(e.t_us));
        events.push(GovernorEvent {
            t_us,
            kind,
            value,
            detail: detail.into(),
        });
    }

    /// Snapshot of all events recorded so far.
    pub fn events(&self) -> Vec<GovernorEvent> {
        self.events
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Serializes the log as governor JSONL (one line per event,
    /// trailing newline; empty string when nothing was recorded).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.events().iter() {
            out.push_str(&format!(
                "{{\"schema\":{},\"t_us\":{},\"kind\":{},\"value\":{},\"detail\":{}}}\n",
                json::escape(GOVERNOR_SCHEMA),
                e.t_us,
                json::escape(e.kind),
                if e.value.is_finite() { e.value } else { -1.0 },
                json::escape(&e.detail),
            ));
        }
        out
    }
}

/// Validates one governor JSONL document: every line parses and is
/// schema-tagged, kinds come from [`KNOWN_KINDS`], `t_us` is monotone
/// non-decreasing, and the final event is terminal ([`TERMINAL_KINDS`]).
/// Returns the number of events.
pub fn validate_governor_jsonl(text: &str) -> Result<usize, String> {
    let mut last_t = 0u64;
    let mut count = 0usize;
    let mut last_kind = String::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if v.get("schema").and_then(Value::as_str) != Some(GOVERNOR_SCHEMA) {
            return Err(format!("line {}: missing schema {GOVERNOR_SCHEMA}", i + 1));
        }
        let Some(kind) = v.get("kind").and_then(Value::as_str) else {
            return Err(format!("line {}: missing kind", i + 1));
        };
        if !KNOWN_KINDS.contains(&kind) {
            return Err(format!("line {}: unknown kind {kind}", i + 1));
        }
        let t = v.get("t_us").and_then(Value::as_f64).unwrap_or(-1.0);
        if t < 0.0 || (t as u64) < last_t {
            return Err(format!("line {}: t_us regressed ({t})", i + 1));
        }
        if v.get("value").and_then(Value::as_f64).is_none() {
            return Err(format!("line {}: missing numeric value", i + 1));
        }
        last_t = t as u64;
        last_kind = kind.to_string();
        count += 1;
    }
    if count == 0 {
        return Err("no governor events".to_string());
    }
    if !TERMINAL_KINDS.contains(&last_kind.as_str()) {
        return Err(format!("final event {last_kind} is not terminal"));
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_round_trips_through_the_validator() {
        let log = GovernorLog::new();
        log.record("admit", 1234.5, "predicted 1234.5 <= budget 2000");
        log.record("arm", 42.0, "deadline 50ms over 42 units");
        log.record("shed", 7.0, "eta band over deadline");
        log.record("expire", 0.0, "");
        log.record("finish", 35.0, "35 executed, 7 forfeited");
        let text = log.to_jsonl();
        assert_eq!(validate_governor_jsonl(&text).unwrap(), 5);
        let events = log.events();
        assert_eq!(events.len(), 5);
        assert!(events.windows(2).all(|w| w[0].t_us <= w[1].t_us));
    }

    #[test]
    fn rejection_is_a_valid_terminal_stream() {
        let log = GovernorLog::new();
        log.record("reject", 9999.0, "predicted 9999 > budget 100");
        assert_eq!(validate_governor_jsonl(&log.to_jsonl()).unwrap(), 1);
    }

    #[test]
    fn validator_rejects_malformed_streams() {
        assert!(validate_governor_jsonl("").is_err());
        assert!(validate_governor_jsonl("not json\n").is_err());
        // Wrong schema.
        assert!(validate_governor_jsonl(
            "{\"schema\":\"other\",\"t_us\":1,\"kind\":\"finish\",\"value\":0,\"detail\":\"\"}\n"
        )
        .is_err());
        // Unknown kind.
        assert!(validate_governor_jsonl(
            "{\"schema\":\"sjcm.governor.v1\",\"t_us\":1,\"kind\":\"bogus\",\"value\":0,\"detail\":\"\"}\n"
        )
        .is_err());
        // Non-terminal tail.
        assert!(validate_governor_jsonl(
            "{\"schema\":\"sjcm.governor.v1\",\"t_us\":1,\"kind\":\"admit\",\"value\":0,\"detail\":\"\"}\n"
        )
        .is_err());
        // Regressing timestamps.
        let two = "{\"schema\":\"sjcm.governor.v1\",\"t_us\":5,\"kind\":\"admit\",\"value\":0,\"detail\":\"\"}\n\
                   {\"schema\":\"sjcm.governor.v1\",\"t_us\":4,\"kind\":\"finish\",\"value\":0,\"detail\":\"\"}\n";
        assert!(validate_governor_jsonl(two).is_err());
    }
}
