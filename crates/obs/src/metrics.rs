//! The metrics registry: named counters, gauges and fixed-bucket
//! histograms behind one mutex.
//!
//! The registry is deliberately simple — metrics are recorded at unit
//! and phase boundaries (per work unit, per join, per experiment), not
//! per node access, so a single `Mutex<BTreeMap>` is far below the
//! noise floor of everything it measures. `BTreeMap` keeps the JSONL
//! export and the report tables deterministically ordered.
//!
//! Naming convention (dotted paths, like the gauges the drift monitor
//! publishes): `<subsystem>.<quantity>[.<qualifier>…]`, e.g.
//! `join.na.r1.l2`, `buffer.r1.evictions`, `parallel.steal.attempts`.

use crate::json::escape;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Which kind a metric name resolved to (for report rendering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MetricKind {
    /// Monotonically increasing `u64`.
    Counter,
    /// Last-write-wins `f64`.
    Gauge,
    /// Fixed-bucket histogram.
    Histogram,
}

/// A fixed-bucket histogram: `bounds[i]` is the inclusive upper edge of
/// bucket `i`, with one implicit overflow bucket at the end.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive upper bounds, strictly increasing.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; `counts.len() == bounds.len() + 1`.
    pub counts: Vec<u64>,
    /// Total number of recorded samples.
    pub total: u64,
    /// Sum of recorded samples.
    pub sum: f64,
}

impl Histogram {
    fn new(bounds: Vec<f64>) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let counts = vec![0; bounds.len() + 1];
        Self {
            bounds,
            counts,
            total: 0,
            sum: 0.0,
        }
    }

    fn record(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += v;
    }
}

#[derive(Default)]
struct State {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// The registry. Thread-safe; share by reference (or `Arc`).
#[derive(Default)]
pub struct MetricsRegistry {
    state: Mutex<State>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.lock().expect("metrics poisoned");
        f.debug_struct("MetricsRegistry")
            .field("counters", &s.counters.len())
            .field("gauges", &s.gauges.len())
            .field("histograms", &s.histograms.len())
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `name` (created at 0).
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut s = self.state.lock().expect("metrics poisoned");
        *s.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Current value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        let s = self.state.lock().expect("metrics poisoned");
        s.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to `value` (last write wins).
    pub fn gauge_set(&self, name: &str, value: f64) {
        let mut s = self.state.lock().expect("metrics poisoned");
        s.gauges.insert(name.to_string(), value);
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        let s = self.state.lock().expect("metrics poisoned");
        s.gauges.get(name).copied()
    }

    /// Declares histogram `name` with the given inclusive upper bucket
    /// bounds (plus an implicit overflow bucket). Idempotent: re-declaring
    /// keeps the existing histogram.
    pub fn histogram_declare(&self, name: &str, bounds: &[f64]) {
        let mut s = self.state.lock().expect("metrics poisoned");
        s.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds.to_vec()));
    }

    /// Records `value` into histogram `name`, declaring it with
    /// power-of-four bucket bounds `1, 4, …, 4096` when absent — a shape
    /// that suits the small positive counts the schedulers produce
    /// (queue depths, per-unit tallies).
    pub fn histogram_record(&self, name: &str, value: f64) {
        let mut s = self.state.lock().expect("metrics poisoned");
        s.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(vec![1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0]))
            .record(value);
    }

    /// Snapshot of histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        let s = self.state.lock().expect("metrics poisoned");
        s.histograms.get(name).cloned()
    }

    /// Every gauge whose name starts with `prefix`, sorted by name.
    pub fn gauges_with_prefix(&self, prefix: &str) -> Vec<(String, f64)> {
        let s = self.state.lock().expect("metrics poisoned");
        s.gauges
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// All metric names with their kinds, sorted by name (for reports).
    pub fn names(&self) -> Vec<(String, MetricKind)> {
        let s = self.state.lock().expect("metrics poisoned");
        let mut out: Vec<(String, MetricKind)> = s
            .counters
            .keys()
            .map(|k| (k.clone(), MetricKind::Counter))
            .chain(s.gauges.keys().map(|k| (k.clone(), MetricKind::Gauge)))
            .chain(
                s.histograms
                    .keys()
                    .map(|k| (k.clone(), MetricKind::Histogram)),
            )
            .collect();
        out.sort();
        out
    }

    /// Serializes the registry as JSONL: one object per metric —
    /// `{"type":"counter","name":…,"value":…}`,
    /// `{"type":"gauge","name":…,"value":…}`, and
    /// `{"type":"histogram","name":…,"bounds":[…],"counts":[…],"total":…,"sum":…}`
    /// — counters first, then gauges, then histograms, each sorted by
    /// name, so the artifact is byte-deterministic for deterministic runs.
    pub fn to_jsonl(&self) -> String {
        let s = self.state.lock().expect("metrics poisoned");
        let mut out = String::new();
        for (k, v) in &s.counters {
            let _ = writeln!(
                out,
                "{{\"type\":\"counter\",\"name\":{},\"value\":{v}}}",
                escape(k)
            );
        }
        for (k, v) in &s.gauges {
            let _ = write!(
                out,
                "{{\"type\":\"gauge\",\"name\":{},\"value\":",
                escape(k)
            );
            if v.is_finite() {
                let _ = write!(out, "{v}");
            } else {
                out.push_str("null");
            }
            out.push_str("}\n");
        }
        for (k, h) in &s.histograms {
            let bounds: Vec<String> = h.bounds.iter().map(|b| format!("{b}")).collect();
            let counts: Vec<String> = h.counts.iter().map(|c| format!("{c}")).collect();
            let _ = writeln!(
                out,
                "{{\"type\":\"histogram\",\"name\":{},\"bounds\":[{}],\"counts\":[{}],\"total\":{},\"sum\":{}}}",
                escape(k),
                bounds.join(","),
                counts.join(","),
                h.total,
                if h.sum.is_finite() { h.sum } else { 0.0 }
            );
        }
        out
    }

    /// Writes [`MetricsRegistry::to_jsonl`] to `path` (parent
    /// directories are created).
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_jsonl())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        m.counter_add("a.b", 2);
        m.counter_add("a.b", 3);
        assert_eq!(m.counter("a.b"), 5);
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn gauges_last_write_wins() {
        let m = MetricsRegistry::new();
        m.gauge_set("g", 1.0);
        m.gauge_set("g", 0.25);
        assert_eq!(m.gauge("g"), Some(0.25));
        assert_eq!(m.gauge("absent"), None);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let m = MetricsRegistry::new();
        m.histogram_declare("h", &[1.0, 10.0]);
        for v in [0.5, 1.0, 2.0, 10.0, 11.0, 1e9] {
            m.histogram_record("h", v);
        }
        let h = m.histogram("h").unwrap();
        assert_eq!(h.counts, vec![2, 2, 2]); // ≤1, ≤10, overflow
        assert_eq!(h.total, 6);
    }

    #[test]
    fn default_buckets_cover_small_counts() {
        let m = MetricsRegistry::new();
        m.histogram_record("depths", 3.0);
        let h = m.histogram("depths").unwrap();
        assert_eq!(h.counts.iter().sum::<u64>(), 1);
        assert_eq!(h.bounds.len() + 1, h.counts.len());
    }

    #[test]
    fn gauge_prefix_query() {
        let m = MetricsRegistry::new();
        m.gauge_set("drift.na.r1.l1", 0.1);
        m.gauge_set("drift.da.r1.l1", 0.2);
        m.gauge_set("other", 9.0);
        let drift = m.gauges_with_prefix("drift.");
        assert_eq!(drift.len(), 2);
        assert_eq!(drift[0].0, "drift.da.r1.l1");
    }

    #[test]
    fn jsonl_parses_with_required_keys() {
        let m = MetricsRegistry::new();
        m.counter_add("c", 1);
        m.gauge_set("g", 0.5);
        m.gauge_set("bad", f64::INFINITY); // serialized as null
        m.histogram_record("h", 2.0);
        let jsonl = m.to_jsonl();
        let mut kinds = Vec::new();
        for line in jsonl.lines() {
            let v = parse(line).expect("line parses");
            let kind = v.get("type").unwrap().as_str().unwrap().to_string();
            assert!(v.get("name").is_some());
            match kind.as_str() {
                "counter" | "gauge" => assert!(v.get("value").is_some()),
                "histogram" => {
                    let bounds = v.get("bounds").unwrap().as_arr().unwrap();
                    let counts = v.get("counts").unwrap().as_arr().unwrap();
                    assert_eq!(counts.len(), bounds.len() + 1);
                    assert!(v.get("total").is_some());
                }
                other => panic!("unexpected type {other}"),
            }
            kinds.push(kind);
        }
        assert_eq!(kinds, vec!["counter", "gauge", "gauge", "histogram"]);
    }

    #[test]
    fn names_lists_all_kinds_sorted() {
        let m = MetricsRegistry::new();
        m.histogram_record("z", 1.0);
        m.counter_add("a", 1);
        m.gauge_set("m", 0.0);
        let names: Vec<String> = m.names().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
    }
}
