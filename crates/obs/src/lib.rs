//! Workspace-wide observability for the spatial-join cost-model
//! reproduction.
//!
//! The paper's entire claim is that Eqs 6–12 predict NA/DA within a
//! ~15% relative-error envelope. Until now the repro could only check
//! that claim *after* a run, by diffing CSVs; this crate supplies the
//! feedback loop that watches prediction vs. observation while a join
//! executes:
//!
//! * [`span`] — a lightweight hierarchical span/event system
//!   ([`Tracer`]) with a JSONL sink and a human-readable tree summary.
//!   A disabled tracer is a single `Option` check per call site: no
//!   clock reads, no allocation, no locking (see the `obs_overhead`
//!   bench variant in `sjcm-bench`).
//! * [`metrics`] — a [`MetricsRegistry`] of named counters, gauges and
//!   fixed-bucket histograms, fed by the storage layer's access
//!   statistics and buffer counters and by the parallel scheduler's
//!   steal tallies.
//! * [`drift`] — the [`DriftMonitor`]: per-level cost predictions are
//!   registered up front, live counters are compared against them as
//!   the join progresses (an *overrun* of the envelope is flagged
//!   in-flight), and the final relative errors are published as
//!   `drift.*` gauges.
//! * [`json`] — the tiny self-contained JSON escaping/validation layer
//!   the JSONL sinks share (the workspace builds offline; there is no
//!   serde).
//! * [`perfetto`] — a Chrome/Perfetto trace-event exporter: span
//!   records become worker-lane slices (work units, steals, drift
//!   breaches as instant markers) loadable in `ui.perfetto.dev`.
//! * [`progress`] — the *predictive* layer: a live progress/ETA engine
//!   seeded from the Eq-6 per-level priors, refined in flight by the
//!   observed branching ratios, with monotone fractions, a windowed
//!   work-rate ETA inside the §4.1 ±15% band, and an on-demand
//!   full-run-state snapshot ([`progress::RunState`]).
//! * [`governor`] — the decision log of the query governor: admission,
//!   deadline arming, load shedding, expiry and memory-budget denials
//!   as a validated JSONL event stream ([`governor::GovernorLog`])
//!   plus the `governor.*` metric names.
//!
//! The crate is std-only and dependency-free on purpose: every other
//! crate in the workspace can afford to link it, and the execution
//! layers ship it through their hot paths only behind the
//! disabled-check guarantee above.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drift;
pub mod governor;
pub mod json;
pub mod metrics;
pub mod perfetto;
pub mod progress;
pub mod span;

pub use drift::{DriftMonitor, DriftSample, DA_TOTAL, NA_TOTAL, PAPER_ENVELOPE};
pub use governor::{
    validate_governor_jsonl, GovernorEvent, GovernorLog, GOVERNOR_EVENTS_FILE, GOVERNOR_SCHEMA,
};
pub use metrics::{Histogram, MetricKind, MetricsRegistry};
pub use perfetto::{
    chrome_trace_json, validate_chrome_trace, write_chrome_trace, DRIFT_BREACH_SPAN, PROGRESS_SPAN,
    WORKER_FIELD,
};
pub use progress::{
    validate_progress_jsonl, LevelPrior, ProgressEngine, ProgressSink, ProgressSnapshot,
    ProgressTracker, RunState,
};
pub use span::{FieldValue, Span, SpanRecord, Tracer};
