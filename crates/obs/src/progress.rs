//! Cost-model-driven live progress and ETA for a running spatial join.
//!
//! The paper's whole point is that Eqs 6–12 predict the join's total
//! work *before* it runs — which is exactly the denominator a progress
//! estimator needs. This module turns that prediction into a live
//! "X% done, ETA T" signal:
//!
//! * a [`ProgressTracker`] — the shared atomic hub the executors feed.
//!   Disabled (the default) it is one `Option` discriminant check per
//!   hook, the same no-op-sink guarantee as [`crate::Tracer`];
//! * per-executor [`ProgressSink`]s — executors do **not** touch the
//!   shared counters per access. A sink piggybacks on the executor's
//!   existing per-level `AccessStats` tallies: every
//!   [`ProgressSink::tick`] accesses (plus every work-unit boundary)
//!   the executor hands the sink its current per-level counters and the
//!   sink publishes the *delta* since its last flush. The hot path
//!   gains one increment and one branch; contention is one batch of
//!   `fetch_add`s per ~512 accesses per thread;
//! * a [`ProgressEngine`] — the single-reader estimator. It seeds
//!   per-level work estimates from the Eq-6 NA priors
//!   (`sjcm_core::join::join_na_priors`), re-estimates remaining work
//!   by blending each level's prior branching ratio with the observed
//!   one (EWMA-smoothed, prior-dominated early, observation-dominated
//!   late), and emits monotone-by-construction [`ProgressSnapshot`]s
//!   with an ETA from a windowed work-rate clock and a confidence band
//!   from the paper's §4.1 ~15% error envelope.
//!
//! # The estimator
//!
//! For each tree, levels are estimated top-down (raw level `top` is the
//! root's children — the first counted level per §3.1):
//!
//! ```text
//! est[top] = max(prior[top], done[top])
//! est[j]   = max(est[j+1] · blend(j), done[j])
//! blend(j) = (1 − w) · prior[j]/prior[j+1]  +  w · ewma(done[j]/done[j+1])
//! w        = done[j+1] / (done[j+1] + ¼ · prior[j+1])
//! ```
//!
//! so early in the run the model prior dominates and late in the run
//! the observed per-level branching ratio does. The progress fraction
//! is `done / (Σ est − forfeited)`, clamped monotone (a re-estimate
//! can shrink the denominator; the published fraction never regresses)
//! and pinned to exactly 1.0 by [`ProgressTracker::finish`].
//!
//! Joins with no model prior (PBSM has no R-trees) fall back to the
//! unit ledger: cells/units completed over total, each weighted by its
//! registered cost.
//!
//! # Faults
//!
//! A permanently lost subtree would stall progress forever — its work
//! sits in the denominator but will never be done. The tracker
//! therefore precomputes, per level, a *forfeit quantum*: the expected
//! remaining NA below one skipped node pair at that level (the same
//! Eq-6 mass the degraded path prices after the run). The executors
//! report each skip as it happens and the quantum is retired from the
//! denominator immediately, so progress neither stalls nor regresses
//! under injected faults.

use crate::drift::DriftMonitor;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Maximum raw tree levels tracked per tree. Fan-out ≥ 2 means 16
/// levels cover > 64 Ki nodes per tree — far beyond the paper's
/// workloads; higher levels are clamped into the top slot.
pub const MAX_LEVELS: usize = 16;

/// Accesses between two sink flushes. Small enough that a 60K-object
/// join flushes hundreds of times (smooth fractions), large enough
/// that shared-counter contention is negligible.
const FLUSH_EVERY: u32 = 512;

/// ETA rate window, microseconds: the work rate is measured over the
/// trailing ~3 s (or the whole run when shorter).
const RATE_WINDOW_US: u64 = 3_000_000;

/// §4.1: the model is accurate to ~15%; the ETA confidence band scales
/// the remaining-work estimate by `1 ± envelope`.
const ETA_ENVELOPE: f64 = 0.15;

/// One per-level NA prior, as produced by
/// `sjcm_core::join::join_na_priors` (plain data so this crate stays
/// free of model-crate dependencies — same decoupling as the drift
/// monitor's named targets).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelPrior {
    /// Tree index, 1 or 2.
    pub tree: usize,
    /// Paper level `j` (1 = leaf). Raw storage level is `j − 1`.
    pub level: usize,
    /// Eq-6 predicted node accesses of this tree at this level.
    pub na: f64,
}

/// Per-worker schedule ledger entry (cost units are whatever the
/// scheduler priced units in — Eq-6 milli-NA for the cost-guided
/// scheduler, unit counts for round-robin, entry counts for PBSM).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerState {
    /// Units scheduled onto this worker.
    pub planned_units: u64,
    /// Total scheduled cost.
    pub planned_cost: u64,
    /// Cost not yet retired — the live deque depth, steal-aware
    /// (stolen units still retire from their *planned* worker, matching
    /// how `WorkerTally` attributes work).
    pub remaining_cost: u64,
    /// Units retired so far.
    pub units_done: u64,
}

struct Shared {
    epoch: Instant,
    /// Per (tree, raw level) node-access counters.
    na: [[AtomicU64; MAX_LEVELS]; 2],
    /// Per-tree disk-access counters (levels folded — DA only feeds
    /// the hit-ratio introspection, not the work model).
    da: [AtomicU64; 2],
    pairs: AtomicU64,
    /// Work retired from the denominator by skipped subtrees, in
    /// milli-NA.
    forfeited_milli: AtomicU64,
    /// Per raw level: expected remaining NA below one skipped node
    /// pair at that level, in milli-NA (set once at seeding).
    quantum_milli: [AtomicU64; MAX_LEVELS],
    units_total: AtomicU64,
    units_done: AtomicU64,
    cost_total: AtomicU64,
    cost_done: AtomicU64,
    finished: AtomicBool,
    workers: Mutex<Vec<WorkerState>>,
}

impl Shared {
    fn new() -> Self {
        Self {
            epoch: Instant::now(),
            na: [(); 2].map(|_| [(); MAX_LEVELS].map(|_| AtomicU64::new(0))),
            da: [(); 2].map(|_| AtomicU64::new(0)),
            pairs: AtomicU64::new(0),
            forfeited_milli: AtomicU64::new(0),
            quantum_milli: [(); MAX_LEVELS].map(|_| AtomicU64::new(0)),
            units_total: AtomicU64::new(0),
            units_done: AtomicU64::new(0),
            cost_total: AtomicU64::new(0),
            cost_done: AtomicU64::new(0),
            finished: AtomicBool::new(false),
            workers: Mutex::new(Vec::new()),
        }
    }
}

/// The shared progress hub. Cheap to clone (an `Arc`); the disabled
/// tracker owns nothing and every operation on it — and on every sink
/// it hands out — is a single `Option` check.
#[derive(Clone, Default)]
pub struct ProgressTracker {
    shared: Option<Arc<Shared>>,
}

impl std::fmt::Debug for ProgressTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressTracker")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl ProgressTracker {
    /// A tracker whose every operation is a no-op.
    pub fn disabled() -> Self {
        Self { shared: None }
    }

    /// A collecting tracker (epoch = now).
    pub fn enabled() -> Self {
        Self {
            shared: Some(Arc::new(Shared::new())),
        }
    }

    /// `true` when progress is being collected.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// A per-executor sink feeding this tracker. Sinks of a disabled
    /// tracker are free.
    pub fn sink(&self) -> ProgressSink {
        ProgressSink {
            shared: self.shared.clone(),
            ticks: 0,
            last_na: [[0; MAX_LEVELS]; 2],
            last_da: [0; 2],
            last_pairs: 0,
        }
    }

    /// Seeds the per-level forfeit quanta from the Eq-6 priors: a
    /// skipped node pair at raw level `ℓ` retires
    /// `Σ_{ℓ' ≤ ℓ} (P₁[ℓ'] + P₂[ℓ']) / max(pairs at ℓ, 1)` NA from the
    /// denominator — its own two reads plus the expected traversal
    /// below it, averaged over the predicted pair population of that
    /// level. Called by [`ProgressEngine::new`]; idempotent.
    pub fn seed_quanta(&self, priors: &[LevelPrior]) {
        let Some(shared) = &self.shared else {
            return;
        };
        let mut p = [[0.0f64; MAX_LEVELS]; 2];
        for prior in priors {
            let (Some(t), Some(raw)) = (prior.tree.checked_sub(1), prior.level.checked_sub(1))
            else {
                continue;
            };
            if t < 2 {
                p[t][raw.min(MAX_LEVELS - 1)] += prior.na;
            }
        }
        let mut below = 0.0f64;
        for (raw, quantum_slot) in shared.quantum_milli.iter().enumerate().take(MAX_LEVELS) {
            let here = p[0][raw] + p[1][raw];
            below += here;
            // Pair visits at this level ≈ each tree's NA there (every
            // qualifying pair charges one access per tree).
            let visits = p[0][raw].max(p[1][raw]).max(1.0);
            let quantum = below / visits;
            quantum_slot.store((quantum * 1000.0).round() as u64, Ordering::Relaxed);
        }
    }

    /// Registers the schedule: per planned worker `(units, cost)`.
    /// Re-registering replaces the ledger (the totals accumulate —
    /// PBSM registers once, the parallel schedulers once per run).
    pub fn set_schedule(&self, planned: &[(u64, u64)]) {
        let Some(shared) = &self.shared else {
            return;
        };
        let mut units = 0;
        let mut cost = 0;
        let mut ledger = Vec::with_capacity(planned.len());
        for &(u, c) in planned {
            units += u;
            cost += c;
            ledger.push(WorkerState {
                planned_units: u,
                planned_cost: c,
                remaining_cost: c,
                units_done: 0,
            });
        }
        shared.units_total.fetch_add(units, Ordering::Relaxed);
        shared.cost_total.fetch_add(cost, Ordering::Relaxed);
        *shared.workers.lock().expect("progress ledger poisoned") = ledger;
    }

    /// Retires one completed unit of `cost`, attributed to the worker
    /// it was *planned* on (steal-aware: the executing thread passes
    /// the planned worker, mirroring `WorkerTally` attribution).
    pub fn unit_done(&self, worker: usize, cost: u64) {
        let Some(shared) = &self.shared else {
            return;
        };
        shared.units_done.fetch_add(1, Ordering::Relaxed);
        shared.cost_done.fetch_add(cost, Ordering::Relaxed);
        let mut ledger = shared.workers.lock().expect("progress ledger poisoned");
        if let Some(w) = ledger.get_mut(worker) {
            w.remaining_cost = w.remaining_cost.saturating_sub(cost);
            w.units_done += 1;
        }
    }

    /// Adds emitted result pairs (executors with an `AccessStats`-fed
    /// sink report pairs through the sink instead).
    pub fn add_pairs(&self, n: u64) {
        if let Some(shared) = &self.shared {
            shared.pairs.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Marks the run complete: every later snapshot reports fraction
    /// exactly 1.0 and a zero ETA.
    pub fn finish(&self) {
        if let Some(shared) = &self.shared {
            shared.finished.store(true, Ordering::Release);
        }
    }

    /// Microseconds since the tracker was created (0 when disabled).
    pub fn elapsed_us(&self) -> u64 {
        self.shared
            .as_ref()
            .map(|s| s.epoch.elapsed().as_micros() as u64)
            .unwrap_or(0)
    }
}

/// Per-executor feed into a [`ProgressTracker`]. See the module docs
/// for the delta-flush protocol; executors call [`ProgressSink::tick`]
/// per access and flush when it fires (and at unit boundaries / run
/// end, so progress is current whenever a unit retires).
pub struct ProgressSink {
    shared: Option<Arc<Shared>>,
    ticks: u32,
    last_na: [[u64; MAX_LEVELS]; 2],
    last_da: [u64; 2],
    last_pairs: u64,
}

impl ProgressSink {
    /// A sink that feeds nothing.
    pub fn disabled() -> Self {
        ProgressTracker::disabled().sink()
    }

    /// `true` when this sink feeds an enabled tracker.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Counts one access; `true` when a flush is due. One branch and
    /// one increment when enabled, one `Option` check when not.
    #[inline]
    pub fn tick(&mut self) -> bool {
        match &self.shared {
            None => false,
            Some(_) => {
                self.ticks = self.ticks.wrapping_add(1);
                self.ticks.is_multiple_of(FLUSH_EVERY)
            }
        }
    }

    /// Publishes the delta between the executor's current per-level
    /// `(level, NA, DA)` tallies (plus its pair count) and the last
    /// flush. The iterators are the two trees' `AccessStats::per_level`
    /// snapshots; counters are cumulative and never regress.
    pub fn flush<I1, I2>(&mut self, tree1: I1, tree2: I2, pairs: u64)
    where
        I1: IntoIterator<Item = (u8, u64, u64)>,
        I2: IntoIterator<Item = (u8, u64, u64)>,
    {
        let Some(shared) = &self.shared else {
            return;
        };
        flush_tree(shared, &mut self.last_na[0], &mut self.last_da[0], 0, tree1);
        flush_tree(shared, &mut self.last_na[1], &mut self.last_da[1], 1, tree2);
        if pairs > self.last_pairs {
            shared
                .pairs
                .fetch_add(pairs - self.last_pairs, Ordering::Relaxed);
            self.last_pairs = pairs;
        }
    }

    /// Reports a permanently skipped node pair at raw level `level`:
    /// the precomputed forfeit quantum is retired from the work
    /// denominator immediately, so progress never stalls on faults.
    pub fn forfeit(&self, level: u8) {
        let Some(shared) = &self.shared else {
            return;
        };
        let raw = (level as usize).min(MAX_LEVELS - 1);
        let q = shared.quantum_milli[raw].load(Ordering::Relaxed);
        // Unseeded trackers (no priors registered) retire a token 2
        // accesses — the pair's own reads — so the signal still moves.
        shared
            .forfeited_milli
            .fetch_add(q.max(2_000), Ordering::Relaxed);
    }
}

/// Publishes one tree's cumulative `(level, NA, DA)` tallies as deltas
/// into the hub, updating the sink's last-seen snapshot. Counters are
/// cumulative per executor, so `cur − last ≥ 0` always.
fn flush_tree(
    shared: &Shared,
    last_na: &mut [u64; MAX_LEVELS],
    last_da: &mut u64,
    t: usize,
    levels: impl IntoIterator<Item = (u8, u64, u64)>,
) {
    let mut da_now = 0;
    for (level, na, da) in levels {
        let raw = (level as usize).min(MAX_LEVELS - 1);
        da_now += da;
        let delta = na.saturating_sub(last_na[raw]);
        if delta > 0 {
            shared.na[t][raw].fetch_add(delta, Ordering::Relaxed);
            last_na[raw] = na;
        }
    }
    if da_now > *last_da {
        shared.da[t].fetch_add(da_now - *last_da, Ordering::Relaxed);
        *last_da = da_now;
    }
}

/// One emitted progress sample — a line of the `join_progress.jsonl`
/// artifact and the payload of the `--watch` terminal line.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressSnapshot {
    /// Microseconds since the tracker's epoch.
    pub t_us: u64,
    /// Monotone progress fraction in `[0, 1]`; exactly 1.0 once the
    /// run has called [`ProgressTracker::finish`].
    pub fraction: f64,
    /// Work done so far (NA for model-driven runs, retired unit cost
    /// for ledger-driven runs like PBSM).
    pub done_work: f64,
    /// Current estimate of total work, after prior/observation
    /// blending and forfeit retirement. `≥ done_work`.
    pub est_total_work: f64,
    /// Work retired from the denominator by skipped subtrees.
    pub forfeited_work: f64,
    /// Node accesses published so far (both trees).
    pub na_done: u64,
    /// Disk accesses published so far (both trees).
    pub da_done: u64,
    /// Result pairs published so far.
    pub pairs: u64,
    /// Work units retired / scheduled (0/0 for the sequential join,
    /// which has no unit ledger).
    pub units_done: u64,
    /// Total scheduled units.
    pub units_total: u64,
    /// Estimated microseconds to completion from the windowed work
    /// rate; `None` until a rate is measurable (or once finished).
    pub eta_us: Option<u64>,
    /// Optimistic ETA bound: remaining work shrunk by the §4.1 ~15%
    /// envelope.
    pub eta_lo_us: Option<u64>,
    /// Pessimistic ETA bound: remaining work grown by the envelope.
    pub eta_hi_us: Option<u64>,
    /// `true` once [`ProgressTracker::finish`] was called.
    pub finished: bool,
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn write_opt(out: &mut String, v: Option<u64>) {
    match v {
        Some(v) => {
            let _ = write!(out, "{v}");
        }
        None => out.push_str("null"),
    }
}

impl ProgressSnapshot {
    /// One JSON object, no trailing newline:
    /// `{"type":"progress","t_us":…,"fraction":…,…}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"type\":\"progress\",\"t_us\":{},\"fraction\":",
            self.t_us
        );
        write_f64(&mut out, self.fraction);
        out.push_str(",\"done_work\":");
        write_f64(&mut out, self.done_work);
        out.push_str(",\"est_total_work\":");
        write_f64(&mut out, self.est_total_work);
        out.push_str(",\"forfeited_work\":");
        write_f64(&mut out, self.forfeited_work);
        let _ = write!(
            out,
            ",\"na_done\":{},\"da_done\":{},\"pairs\":{},\"units_done\":{},\"units_total\":{}",
            self.na_done, self.da_done, self.pairs, self.units_done, self.units_total
        );
        out.push_str(",\"eta_us\":");
        write_opt(&mut out, self.eta_us);
        out.push_str(",\"eta_lo_us\":");
        write_opt(&mut out, self.eta_lo_us);
        out.push_str(",\"eta_hi_us\":");
        write_opt(&mut out, self.eta_hi_us);
        let _ = write!(out, ",\"finished\":{}}}", self.finished);
        out
    }

    /// A single-line terminal rendering for `--watch`:
    /// `[=====>         ]  34.2%  ETA 1.8s (1.5–2.1)  pairs 48210`.
    pub fn terminal_line(&self) -> String {
        const WIDTH: usize = 24;
        let filled = ((self.fraction * WIDTH as f64) as usize).min(WIDTH);
        let mut bar = String::with_capacity(WIDTH + 2);
        bar.push('[');
        for i in 0..WIDTH {
            bar.push(match i.cmp(&filled) {
                std::cmp::Ordering::Less => '=',
                std::cmp::Ordering::Equal if !self.finished => '>',
                _ => ' ',
            });
        }
        bar.push(']');
        let secs = |us: u64| us as f64 / 1e6;
        let eta = match (self.eta_us, self.eta_lo_us, self.eta_hi_us) {
            _ if self.finished => format!("done in {:.1}s", secs(self.t_us)),
            (Some(eta), Some(lo), Some(hi)) => {
                format!("ETA {:.1}s ({:.1}–{:.1})", secs(eta), secs(lo), secs(hi))
            }
            _ => "ETA —".to_string(),
        };
        format!(
            "{bar} {:5.1}%  {eta}  pairs {}",
            self.fraction * 100.0,
            self.pairs
        )
    }
}

/// Introspection of one (tree, paper level) work cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelState {
    /// Tree index, 1 or 2.
    pub tree: usize,
    /// Paper level `j` (1 = leaf).
    pub level: usize,
    /// Node accesses done at this level.
    pub done: u64,
    /// The Eq-6 prior for this level.
    pub prior: f64,
    /// The engine's current blended estimate of this level's total.
    pub est_total: f64,
}

/// Full run state, as returned by [`ProgressEngine::run_state`] — the
/// on-demand `snapshot()` API a wire protocol would serve.
#[derive(Debug, Clone, PartialEq)]
pub struct RunState {
    /// The headline progress sample.
    pub snapshot: ProgressSnapshot,
    /// Per-(tree, level) done/prior/estimate breakdown, model-driven
    /// runs only (empty for unit-ledger runs).
    pub levels: Vec<LevelState>,
    /// Per-worker schedule ledger (empty for the sequential join).
    pub workers: Vec<WorkerState>,
    /// Live buffer hit ratio implied by the published counters
    /// (`1 − DA/NA`); `None` before any access.
    pub buffer_hit_ratio: Option<f64>,
    /// Drift-monitor breach count, when a monitor was attached.
    pub drift_breaches: usize,
    /// `DriftMonitor::all_within`, when a monitor was attached (`true`
    /// with none — no evidence of drift).
    pub drift_all_within: bool,
}

/// The single-reader estimator over a [`ProgressTracker`]. Owns the
/// mutable smoothing state (EWMA ratios, the monotone clamp, the rate
/// window), so exactly one engine should sample a given run — the
/// watcher thread in `experiments join --watch`, the test harness in
/// the acceptance tests.
pub struct ProgressEngine {
    tracker: ProgressTracker,
    prior: [[f64; MAX_LEVELS]; 2],
    /// Highest raw level with a nonzero prior, per tree (`None` when
    /// the tree contributes no counted work).
    top: [Option<usize>; 2],
    prior_total: f64,
    ewma: [[Option<f64>; MAX_LEVELS]; 2],
    max_fraction: f64,
    window: VecDeque<(u64, f64)>,
}

impl ProgressEngine {
    /// An engine seeded with Eq-6 per-level priors (see
    /// `sjcm_core::join::join_na_priors`). Also seeds the tracker's
    /// forfeit quanta from the same priors.
    pub fn new(tracker: &ProgressTracker, priors: &[LevelPrior]) -> Self {
        tracker.seed_quanta(priors);
        let mut prior = [[0.0f64; MAX_LEVELS]; 2];
        for p in priors {
            let (Some(t), Some(raw)) = (p.tree.checked_sub(1), p.level.checked_sub(1)) else {
                continue;
            };
            if t < 2 {
                prior[t][raw.min(MAX_LEVELS - 1)] += p.na;
            }
        }
        let top = [0, 1].map(|t| prior[t].iter().rposition(|&v| v > 0.0));
        let prior_total: f64 = prior.iter().flatten().sum();
        Self {
            tracker: tracker.clone(),
            prior,
            top,
            prior_total,
            ewma: [[None; MAX_LEVELS]; 2],
            max_fraction: 0.0,
            window: VecDeque::new(),
        }
    }

    /// An engine with no model prior — progress comes purely from the
    /// unit ledger (PBSM: cells completed × per-cell sweep cost).
    pub fn for_units(tracker: &ProgressTracker) -> Self {
        Self::new(tracker, &[])
    }

    /// Current estimate of total work (the live denominator, before
    /// forfeit retirement) — what the prior-vs-refined accuracy curve
    /// in EXPERIMENTS.md tracks against the final true work.
    pub fn estimated_total(&mut self) -> f64 {
        self.sample().est_total_work
    }

    fn estimate(&mut self, done: &[[u64; MAX_LEVELS]; 2]) -> (f64, [[f64; MAX_LEVELS]; 2]) {
        let mut est = [[0.0f64; MAX_LEVELS]; 2];
        let mut total = 0.0;
        for t in 0..2 {
            let Some(top) = self.top[t] else {
                // No prior for this tree: whatever was done is the
                // estimate (height-1 trees, unit-ledger runs).
                for raw in 0..MAX_LEVELS {
                    est[t][raw] = done[t][raw] as f64;
                    total += est[t][raw];
                }
                continue;
            };
            let mut above = self.prior[t][top].max(done[t][top] as f64);
            est[t][top] = above;
            total += above;
            for raw in (0..top).rev() {
                let p_here = self.prior[t][raw];
                let p_above = self.prior[t][raw + 1].max(f64::MIN_POSITIVE);
                let prior_ratio = p_here / p_above;
                let d_above = done[t][raw + 1] as f64;
                let obs_ratio = if d_above > 0.0 {
                    done[t][raw] as f64 / d_above
                } else {
                    prior_ratio
                };
                let smoothed = match self.ewma[t][raw] {
                    None => obs_ratio,
                    Some(prev) => 0.2 * obs_ratio + 0.8 * prev,
                };
                self.ewma[t][raw] = Some(smoothed);
                let w = d_above / (d_above + 0.25 * self.prior[t][raw + 1].max(1.0));
                let blended = (1.0 - w) * prior_ratio + w * smoothed;
                let e = (above * blended).max(done[t][raw] as f64);
                est[t][raw] = e;
                total += e;
                above = e;
            }
        }
        (total, est)
    }

    /// Takes one sample: reads the shared counters, refines the
    /// remaining-work estimate, advances the monotone clamp and the
    /// rate window, and returns the snapshot. Sampling a disabled
    /// tracker returns an all-zero snapshot.
    pub fn sample(&mut self) -> ProgressSnapshot {
        let Some(shared) = &self.tracker.shared else {
            return ProgressSnapshot {
                t_us: 0,
                fraction: 0.0,
                done_work: 0.0,
                est_total_work: 0.0,
                forfeited_work: 0.0,
                na_done: 0,
                da_done: 0,
                pairs: 0,
                units_done: 0,
                units_total: 0,
                eta_us: None,
                eta_lo_us: None,
                eta_hi_us: None,
                finished: false,
            };
        };
        let t_us = shared.epoch.elapsed().as_micros() as u64;
        let mut done = [[0u64; MAX_LEVELS]; 2];
        for (t, row) in done.iter_mut().enumerate() {
            for (raw, cell) in row.iter_mut().enumerate() {
                *cell = shared.na[t][raw].load(Ordering::Relaxed);
            }
        }
        let na_done: u64 = done.iter().flatten().sum();
        let da_done = shared.da[0].load(Ordering::Relaxed) + shared.da[1].load(Ordering::Relaxed);
        let pairs = shared.pairs.load(Ordering::Relaxed);
        let units_done = shared.units_done.load(Ordering::Relaxed);
        let units_total = shared.units_total.load(Ordering::Relaxed);
        let cost_done = shared.cost_done.load(Ordering::Relaxed);
        let cost_total = shared.cost_total.load(Ordering::Relaxed);
        let forfeited = shared.forfeited_milli.load(Ordering::Relaxed) as f64 / 1000.0;
        let finished = shared.finished.load(Ordering::Acquire);

        let (done_work, est_total) = if self.prior_total > 0.0 && cost_total > 0 {
            // A unit schedule exists (cost-guided, round-robin, PBSM):
            // the per-level branching ratios are not representative
            // mid-run — the frontier descent completes the upper
            // levels long before the leaves, so level-over-level
            // ratios track "how far along" rather than true fan-out.
            // The ledger is the better observation: if `f` of the
            // scheduled cost has retired, total ≈ done / f. Blend it
            // with the Eq-6 prior, prior-dominated early (f → 0),
            // observation-dominated late (f → 1, where the estimate
            // converges to the exact final work).
            let f = (cost_done as f64 / cost_total as f64).clamp(0.0, 1.0);
            let obs_est = if f > 0.0 {
                na_done as f64 / f
            } else {
                self.prior_total
            };
            let blended = (1.0 - f) * self.prior_total.max(na_done as f64) + f * obs_est;
            (na_done as f64, blended)
        } else if self.prior_total > 0.0 {
            let (total, _) = self.estimate(&done);
            (na_done as f64, total)
        } else if cost_total > 0 {
            (cost_done as f64, cost_total as f64)
        } else {
            // Nothing to estimate against (e.g. two height-1 trees):
            // progress is binary.
            (0.0, 0.0)
        };
        let denom = (est_total - forfeited)
            .max(done_work)
            .max(f64::MIN_POSITIVE);
        let raw_fraction = if est_total > 0.0 {
            (done_work / denom).clamp(0.0, 1.0)
        } else {
            0.0
        };
        // Monotone by construction: a refined (smaller) denominator or
        // a freshly retired forfeit can only push the max up, never
        // published output down. Pre-finish samples cap just below 1.0
        // so exactly-1.0 is unambiguously "finished".
        self.max_fraction = self.max_fraction.max(raw_fraction.min(0.9995));
        let fraction = if finished { 1.0 } else { self.max_fraction };

        // Windowed work rate → ETA with the ±15% envelope band.
        self.window.push_back((t_us, done_work));
        while let Some(&(t0, _)) = self.window.front() {
            if self.window.len() > 8 && t_us.saturating_sub(t0) > RATE_WINDOW_US {
                self.window.pop_front();
            } else {
                break;
            }
        }
        let (mut eta_us, mut eta_lo_us, mut eta_hi_us) = (None, None, None);
        if finished {
            eta_us = Some(0);
            eta_lo_us = Some(0);
            eta_hi_us = Some(0);
        } else if let (Some(&(t0, w0)), true) = (self.window.front(), self.window.len() >= 2) {
            let dt = t_us.saturating_sub(t0) as f64;
            let dw = done_work - w0;
            if dt > 0.0 && dw > 0.0 {
                let rate = dw / dt; // work per microsecond
                let remaining = (denom - done_work).max(0.0);
                eta_us = Some((remaining / rate) as u64);
                eta_lo_us = Some((remaining * (1.0 - ETA_ENVELOPE) / rate) as u64);
                eta_hi_us = Some((remaining * (1.0 + ETA_ENVELOPE) / rate) as u64);
            }
        }
        ProgressSnapshot {
            t_us,
            fraction,
            done_work,
            est_total_work: est_total,
            forfeited_work: forfeited,
            na_done,
            da_done,
            pairs,
            units_done,
            units_total,
            eta_us,
            eta_lo_us,
            eta_hi_us,
            finished,
        }
    }

    /// The on-demand full-run-state introspection: the headline sample
    /// plus per-level done/prior/estimate cells, the per-worker ledger,
    /// the live buffer hit ratio, and the drift monitor's verdict when
    /// one is attached.
    pub fn run_state(&mut self, drift: Option<&DriftMonitor>) -> RunState {
        let snapshot = self.sample();
        let mut levels = Vec::new();
        if let Some(shared) = &self.tracker.shared {
            if self.prior_total > 0.0 {
                let mut done = [[0u64; MAX_LEVELS]; 2];
                for (t, row) in done.iter_mut().enumerate() {
                    for (raw, cell) in row.iter_mut().enumerate() {
                        *cell = shared.na[t][raw].load(Ordering::Relaxed);
                    }
                }
                let (_, est) = self.estimate(&done);
                for t in 0..2 {
                    let Some(top) = self.top[t] else { continue };
                    for raw in 0..=top {
                        levels.push(LevelState {
                            tree: t + 1,
                            level: raw + 1,
                            done: done[t][raw],
                            prior: self.prior[t][raw],
                            est_total: est[t][raw],
                        });
                    }
                }
            }
        }
        let workers = self
            .tracker
            .shared
            .as_ref()
            .map(|s| s.workers.lock().expect("progress ledger poisoned").clone())
            .unwrap_or_default();
        let buffer_hit_ratio = if snapshot.na_done > 0 {
            Some(1.0 - snapshot.da_done as f64 / snapshot.na_done as f64)
        } else {
            None
        };
        RunState {
            snapshot,
            levels,
            workers,
            buffer_hit_ratio,
            drift_breaches: drift.map(|d| d.breaches().len()).unwrap_or(0),
            drift_all_within: drift.map(|d| d.all_within()).unwrap_or(true),
        }
    }
}

/// Validates one progress JSONL document (as written next to the other
/// `--obs-dir` artifacts): every line parses with the required keys,
/// `t_us` and `fraction` are monotone non-decreasing, fractions stay in
/// `[0, 1]`, and the final line is `finished: true` with fraction
/// exactly 1.0. Returns the number of samples.
pub fn validate_progress_jsonl(text: &str) -> Result<usize, String> {
    use crate::json::{parse, Value};
    let mut last_t = 0u64;
    let mut last_fraction = -1.0f64;
    let mut count = 0usize;
    let mut finished = false;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if v.get("type").and_then(Value::as_str) != Some("progress") {
            return Err(format!("line {}: not a progress record", i + 1));
        }
        for key in [
            "t_us",
            "fraction",
            "done_work",
            "na_done",
            "pairs",
            "finished",
        ] {
            if v.get(key).is_none() {
                return Err(format!("line {}: missing key {key}", i + 1));
            }
        }
        let t = v.get("t_us").and_then(Value::as_f64).unwrap_or(-1.0);
        if t < 0.0 || (t as u64) < last_t {
            return Err(format!("line {}: t_us regressed ({t})", i + 1));
        }
        last_t = t as u64;
        let f = v.get("fraction").and_then(Value::as_f64).unwrap_or(-1.0);
        if !(0.0..=1.0).contains(&f) {
            return Err(format!("line {}: fraction {f} outside [0, 1]", i + 1));
        }
        if f < last_fraction {
            return Err(format!(
                "line {}: fraction regressed ({f} < {last_fraction})",
                i + 1
            ));
        }
        last_fraction = f;
        finished = matches!(v.get("finished"), Some(Value::Bool(true)));
        count += 1;
    }
    if count == 0 {
        return Err("no progress samples".to_string());
    }
    if !finished {
        return Err("final sample is not finished".to_string());
    }
    if last_fraction != 1.0 {
        return Err(format!("final fraction {last_fraction} ≠ 1.0"));
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn priors_two_trees() -> Vec<LevelPrior> {
        // A 3-level-ish prior: 60 leaf accesses over 12 level-2
        // accesses per tree.
        vec![
            LevelPrior {
                tree: 1,
                level: 1,
                na: 60.0,
            },
            LevelPrior {
                tree: 1,
                level: 2,
                na: 12.0,
            },
            LevelPrior {
                tree: 2,
                level: 1,
                na: 60.0,
            },
            LevelPrior {
                tree: 2,
                level: 2,
                na: 12.0,
            },
        ]
    }

    fn feed(sink: &mut ProgressSink, t1: &[(u8, u64, u64)], t2: &[(u8, u64, u64)], pairs: u64) {
        sink.flush(t1.iter().copied(), t2.iter().copied(), pairs);
    }

    #[test]
    fn disabled_tracker_is_inert() {
        let tracker = ProgressTracker::disabled();
        assert!(!tracker.is_enabled());
        let mut sink = tracker.sink();
        assert!(!sink.tick());
        feed(&mut sink, &[(0, 10, 5)], &[], 3);
        sink.forfeit(1);
        tracker.unit_done(0, 5);
        tracker.finish();
        let mut engine = ProgressEngine::new(&tracker, &priors_two_trees());
        let snap = engine.sample();
        assert_eq!(snap.fraction, 0.0);
        assert!(!snap.finished);
        assert_eq!(engine.run_state(None).workers.len(), 0);
    }

    #[test]
    fn fraction_is_monotone_and_finishes_at_exactly_one() {
        let tracker = ProgressTracker::enabled();
        let mut engine = ProgressEngine::new(&tracker, &priors_two_trees());
        let mut sink = tracker.sink();
        let mut last = 0.0;
        for step in 1..=10u64 {
            // 6 leaf accesses per level-2 access, per tree — exactly
            // the prior's branching ratio.
            feed(
                &mut sink,
                &[(0, step * 6, step), (1, step, 0)],
                &[(0, step * 6, step), (1, step, 0)],
                step * 4,
            );
            let snap = engine.sample();
            assert!(snap.fraction >= last, "regressed at step {step}");
            assert!(snap.fraction < 1.0, "hit 1.0 before finish");
            last = snap.fraction;
        }
        tracker.finish();
        let snap = engine.sample();
        assert_eq!(snap.fraction, 1.0);
        assert!(snap.finished);
        assert_eq!(snap.eta_us, Some(0));
        // Fraction by then is substantial: 120 of ~144 predicted.
        assert!(last > 0.5, "got {last}");
    }

    #[test]
    fn estimate_tracks_observed_branching_over_the_prior() {
        // Prior says 5 leaf accesses per internal access; the run
        // observes 20. Late in the run the estimate should be far
        // closer to the observed total than to the prior.
        let priors = vec![
            LevelPrior {
                tree: 1,
                level: 1,
                na: 50.0,
            },
            LevelPrior {
                tree: 1,
                level: 2,
                na: 10.0,
            },
        ];
        let tracker = ProgressTracker::enabled();
        let mut engine = ProgressEngine::new(&tracker, &priors);
        let mut sink = tracker.sink();
        for step in 1..=10u64 {
            feed(&mut sink, &[(0, step * 20, 0), (1, step, 0)], &[], 0);
            engine.sample();
        }
        // Observed: 200 leaf + 10 internal. Prior said 60 total.
        let snap = engine.sample();
        assert!(
            snap.est_total_work > 150.0,
            "estimate {} still prior-bound",
            snap.est_total_work
        );
        assert!(snap.est_total_work >= snap.done_work);
    }

    #[test]
    fn early_estimate_is_prior_dominated() {
        let priors = vec![
            LevelPrior {
                tree: 1,
                level: 1,
                na: 1000.0,
            },
            LevelPrior {
                tree: 1,
                level: 2,
                na: 100.0,
            },
        ];
        let tracker = ProgressTracker::enabled();
        let mut engine = ProgressEngine::new(&tracker, &priors);
        let mut sink = tracker.sink();
        // One internal access, one (atypical) leaf access observed.
        feed(&mut sink, &[(0, 1, 0), (1, 1, 0)], &[], 0);
        let snap = engine.sample();
        // w = 1/(1 + 25) — the prior's 10:1 ratio must dominate the
        // observed 1:1.
        assert!(
            snap.est_total_work > 900.0,
            "estimate {} abandoned the prior too early",
            snap.est_total_work
        );
    }

    #[test]
    fn forfeit_retires_work_from_the_denominator() {
        let tracker = ProgressTracker::enabled();
        let mut engine = ProgressEngine::new(&tracker, &priors_two_trees());
        let mut sink = tracker.sink();
        feed(
            &mut sink,
            &[(0, 30, 0), (1, 6, 0)],
            &[(0, 30, 0), (1, 6, 0)],
            0,
        );
        let before = engine.sample().fraction;
        // Skip a level-1 (raw 0) subtree pair several times: the
        // denominator shrinks, so the fraction must not drop — and
        // should in fact rise.
        for _ in 0..5 {
            sink.forfeit(0);
        }
        let after = engine.sample();
        assert!(after.forfeited_work > 0.0);
        assert!(after.fraction >= before, "{} < {before}", after.fraction);
    }

    #[test]
    fn unit_ledger_drives_progress_without_priors() {
        let tracker = ProgressTracker::enabled();
        let mut engine = ProgressEngine::for_units(&tracker);
        tracker.set_schedule(&[(3, 300), (2, 200)]);
        let s0 = engine.sample();
        assert_eq!(s0.fraction, 0.0);
        assert_eq!(s0.units_total, 5);
        tracker.unit_done(0, 100);
        tracker.unit_done(1, 150);
        let s1 = engine.sample();
        assert!((s1.done_work - 250.0).abs() < 1e-9);
        assert!(s1.fraction > 0.45 && s1.fraction < 0.55, "{}", s1.fraction);
        tracker.unit_done(0, 200);
        tracker.unit_done(1, 50);
        tracker.unit_done(0, 0);
        tracker.finish();
        let s2 = engine.sample();
        assert_eq!(s2.fraction, 1.0);
        assert_eq!(s2.units_done, 5);
        // Steal-aware ledger: worker 0 retired 300 of 300.
        let state = engine.run_state(None);
        assert_eq!(state.workers[0].remaining_cost, 0);
        assert_eq!(state.workers[0].units_done, 3);
        assert_eq!(state.workers[1].remaining_cost, 0);
    }

    #[test]
    fn run_state_reports_levels_workers_and_hit_ratio() {
        let tracker = ProgressTracker::enabled();
        let mut engine = ProgressEngine::new(&tracker, &priors_two_trees());
        tracker.set_schedule(&[(4, 100)]);
        let mut sink = tracker.sink();
        feed(
            &mut sink,
            &[(0, 40, 10), (1, 8, 2)],
            &[(0, 40, 4), (1, 8, 0)],
            7,
        );
        let state = engine.run_state(None);
        assert_eq!(state.levels.len(), 4);
        let leaf1 = state
            .levels
            .iter()
            .find(|l| l.tree == 1 && l.level == 1)
            .unwrap();
        assert_eq!(leaf1.done, 40);
        assert!((leaf1.prior - 60.0).abs() < 1e-9);
        assert!(leaf1.est_total >= 40.0);
        assert_eq!(state.workers.len(), 1);
        assert_eq!(state.workers[0].planned_units, 4);
        // NA 96, DA 16 ⇒ hit ratio 1 − 16/96.
        let hr = state.buffer_hit_ratio.unwrap();
        assert!((hr - (1.0 - 16.0 / 96.0)).abs() < 1e-9);
        assert!(state.drift_all_within);
        assert_eq!(state.snapshot.pairs, 7);
    }

    #[test]
    fn eta_appears_with_a_measurable_rate_and_brackets_the_point_estimate() {
        let tracker = ProgressTracker::enabled();
        let mut engine = ProgressEngine::new(&tracker, &priors_two_trees());
        let mut sink = tracker.sink();
        let mut with_eta = None;
        for step in 1..=20u64 {
            feed(
                &mut sink,
                &[(0, step * 3, 0), (1, step, 0)],
                &[(0, step * 3, 0), (1, step, 0)],
                0,
            );
            std::thread::sleep(std::time::Duration::from_millis(1));
            let snap = engine.sample();
            if snap.eta_us.is_some() {
                with_eta = Some(snap);
            }
        }
        let snap = with_eta.expect("rate never became measurable");
        let (eta, lo, hi) = (
            snap.eta_us.unwrap(),
            snap.eta_lo_us.unwrap(),
            snap.eta_hi_us.unwrap(),
        );
        assert!(lo <= eta && eta <= hi, "{lo} ≤ {eta} ≤ {hi}");
        // The band is the ±15% envelope.
        assert!(hi as f64 >= eta as f64 * 1.10);
    }

    #[test]
    fn snapshot_json_round_trips_and_validates() {
        let tracker = ProgressTracker::enabled();
        let mut engine = ProgressEngine::new(&tracker, &priors_two_trees());
        let mut sink = tracker.sink();
        let mut doc = String::new();
        for step in 1..=5u64 {
            feed(
                &mut sink,
                &[(0, step * 6, step), (1, step, 0)],
                &[(0, step * 6, 0), (1, step, 0)],
                step,
            );
            doc.push_str(&engine.sample().to_json());
            doc.push('\n');
        }
        tracker.finish();
        doc.push_str(&engine.sample().to_json());
        doc.push('\n');
        let n = validate_progress_jsonl(&doc).expect("valid progress stream");
        assert_eq!(n, 6);
        // Each line parses with the advertised keys.
        let first = parse(doc.lines().next().unwrap()).unwrap();
        assert_eq!(
            first.get("type").and_then(crate::json::Value::as_str),
            Some("progress")
        );
        assert!(first.get("eta_us").is_some());
    }

    #[test]
    fn validator_rejects_broken_streams() {
        assert!(validate_progress_jsonl("").is_err());
        // Regressing fraction.
        let bad = concat!(
            "{\"type\":\"progress\",\"t_us\":1,\"fraction\":0.5,\"done_work\":1,\"na_done\":1,\"pairs\":0,\"finished\":false}\n",
            "{\"type\":\"progress\",\"t_us\":2,\"fraction\":0.4,\"done_work\":2,\"na_done\":2,\"pairs\":0,\"finished\":true}\n",
        );
        assert!(validate_progress_jsonl(bad)
            .unwrap_err()
            .contains("regressed"));
        // Final fraction not 1.0.
        let unfinished = "{\"type\":\"progress\",\"t_us\":1,\"fraction\":0.5,\"done_work\":1,\"na_done\":1,\"pairs\":0,\"finished\":true}\n";
        assert!(validate_progress_jsonl(unfinished).is_err());
        // Not finished at all.
        let open = "{\"type\":\"progress\",\"t_us\":1,\"fraction\":1.0,\"done_work\":1,\"na_done\":1,\"pairs\":0,\"finished\":false}\n";
        assert!(validate_progress_jsonl(open).is_err());
    }

    #[test]
    fn terminal_line_renders_bar_fraction_and_eta() {
        let tracker = ProgressTracker::enabled();
        let mut engine = ProgressEngine::for_units(&tracker);
        tracker.set_schedule(&[(2, 100)]);
        tracker.unit_done(0, 50);
        let line = engine.sample().terminal_line();
        assert!(line.contains('%'), "{line}");
        assert!(line.starts_with('['), "{line}");
        tracker.finish();
        let line = engine.sample().terminal_line();
        assert!(line.contains("100.0%"), "{line}");
        assert!(line.contains("done"), "{line}");
    }

    #[test]
    fn sink_deltas_accumulate_across_executors() {
        // Two sinks (two workers) feeding the same tracker: the hub
        // must see the sum, each sink publishing only its own deltas.
        let tracker = ProgressTracker::enabled();
        let mut engine = ProgressEngine::new(&tracker, &priors_two_trees());
        let mut a = tracker.sink();
        let mut b = tracker.sink();
        feed(&mut a, &[(0, 10, 2)], &[(0, 4, 1)], 3);
        feed(&mut b, &[(0, 7, 0)], &[(0, 2, 2)], 1);
        feed(&mut a, &[(0, 12, 2)], &[(0, 4, 1)], 3); // +2 NA only
        let snap = engine.sample();
        assert_eq!(snap.na_done, 10 + 7 + 4 + 2 + 2);
        // a: tree-1 DA 2, tree-2 DA 1; b: tree-1 DA 0, tree-2 DA 2;
        // a's second flush repeats its DA tallies — no new deltas.
        assert_eq!(snap.da_done, 2 + 1 + 2);
        assert_eq!(snap.pairs, 4);
    }

    #[test]
    fn tick_fires_on_the_flush_cadence() {
        let tracker = ProgressTracker::enabled();
        let mut sink = tracker.sink();
        let fires = (0..(FLUSH_EVERY * 2)).filter(|_| sink.tick()).count();
        assert_eq!(fires, 2);
    }
}
