//! Minimal JSON support for the JSONL sinks: string escaping for the
//! writers and a small validating parser for artifact checks (the CI
//! `validate-obs` step re-reads every emitted line through [`parse`]).
//!
//! The workspace builds offline (no serde); `sjcm`'s CLI carries its
//! own equivalent module for its dataset formats, but this crate must
//! stay dependency-free so every other crate can link it, hence the
//! self-contained copy of the ~150 lines rather than a new dependency
//! edge from the bottom of the crate graph to the facade.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, key order preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string contents.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Escapes `s` as a JSON string literal, quotes included.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses one JSON document (e.g. one JSONL line). Returns an error
/// message on malformed input.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Value::Num),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_through_parse() {
        let tricky = "a\"b\\c\nd\te\u{1}";
        let v = parse(&escape(tricky)).unwrap();
        assert_eq!(v.as_str(), Some(tricky));
    }

    #[test]
    fn parses_metric_lines() {
        let line = "{\"type\":\"gauge\",\"name\":\"drift.na.r1.l1\",\"value\":0.042}";
        let v = parse(line).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("gauge"));
        assert_eq!(v.get("value").unwrap().as_f64(), Some(0.042));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse("{\"a\":[1,2,{\"b\":null}],\"c\":true}").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("c"), Some(&Value::Bool(true)));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{\"a\":").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("NaN").is_err());
        assert!(parse("{} junk").is_err());
    }
}
