//! Chrome/Perfetto trace-event export.
//!
//! Renders a tracer's span records in the [Trace Event Format] that
//! `chrome://tracing` and [ui.perfetto.dev] load directly: a JSON
//! object with a `traceEvents` array of complete (`"X"`), instant
//! (`"i"`) and metadata (`"M"`) events. The export makes the parallel
//! join's schedule *visible*: one lane (tid) per worker showing its
//! work units back to back, steals and drift breaches overlaid as
//! instant markers, the coordinator's frontier/seed phases on lane 0.
//!
//! Lane assignment: a span carrying a `worker` field (the scheduler's
//! per-worker spans do) is placed on `tid = worker + 1`; spans without
//! one inherit the lane of their nearest ancestor that has one, and
//! default to the coordinator lane `tid 0`. Timestamps are the
//! tracer's native microsecond offsets, which is exactly the unit the
//! format specifies.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//! [ui.perfetto.dev]: https://ui.perfetto.dev

use crate::json::{escape, parse, Value};
use crate::span::{FieldValue, SpanRecord, Tracer};
use std::collections::HashMap;

/// Span name that is rendered as an instant event (a vertical marker)
/// instead of a duration slice: the execution layer emits one
/// zero-duration span with this name when the drift monitor flags an
/// in-flight overrun.
pub const DRIFT_BREACH_SPAN: &str = "drift-breach";

/// Span name for live progress samples, rendered as instant events on
/// the emitting lane (workers stamp one per retired work unit, the
/// watcher thread one per snapshot on the coordinator lane) so the
/// schedule view shows progress ticking alongside the work slices.
pub const PROGRESS_SPAN: &str = "progress";

/// Field name that assigns a span (and its descendants) to a worker
/// lane.
pub const WORKER_FIELD: &str = "worker";

/// Renders `records` as one Chrome trace-event JSON document.
pub fn chrome_trace_json(records: &[SpanRecord]) -> String {
    // Resolve each span's lane: own `worker` field, else nearest
    // ancestor's, else the coordinator lane 0.
    let by_id: HashMap<u64, &SpanRecord> = records.iter().map(|r| (r.id, r)).collect();
    let mut lane_of: HashMap<u64, u64> = HashMap::new();
    fn lane(id: u64, by_id: &HashMap<u64, &SpanRecord>, cache: &mut HashMap<u64, u64>) -> u64 {
        if let Some(&t) = cache.get(&id) {
            return t;
        }
        let t = by_id.get(&id).map_or(0, |r| {
            own_worker(r)
                .map(|w| w + 1)
                .unwrap_or_else(|| r.parent.map_or(0, |p| lane(p, by_id, cache)))
        });
        cache.insert(id, t);
        t
    }

    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;

    // Metadata: name every lane that appears.
    let mut tids: Vec<u64> = records
        .iter()
        .map(|r| lane(r.id, &by_id, &mut lane_of))
        .collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in &tids {
        let name = if *tid == 0 {
            "coordinator".to_string()
        } else {
            format!("worker {}", tid - 1)
        };
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":{}}}}}",
                escape(&name)
            ),
        );
    }

    for r in records {
        let tid = lane(r.id, &by_id, &mut lane_of);
        if r.name == DRIFT_BREACH_SPAN || r.name == PROGRESS_SPAN {
            // Breaches and progress samples are moments, not intervals.
            let mut ev = format!(
                "{{\"name\":{},\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{tid},",
                escape(&r.name),
                r.start_us
            );
            write_args(&mut ev, &r.fields);
            ev.push('}');
            push_event(&mut out, &mut first, &ev);
            continue;
        }
        let mut ev = format!(
            "{{\"name\":{},\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{tid},",
            escape(&r.name),
            r.start_us,
            r.dur_us
        );
        write_args(&mut ev, &r.fields);
        ev.push('}');
        push_event(&mut out, &mut first, &ev);
        // A stolen work unit additionally gets a steal marker at its
        // start, so steals stand out without opening the slice.
        if r.fields
            .iter()
            .any(|(k, v)| k == "stolen" && *v == FieldValue::Bool(true))
        {
            push_event(
                &mut out,
                &mut first,
                &format!(
                    "{{\"name\":\"steal\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\
                 \"tid\":{tid},\"args\":{{}}}}",
                    r.start_us
                ),
            );
        }
    }
    out.push_str("]}");
    out
}

fn own_worker(r: &SpanRecord) -> Option<u64> {
    r.fields.iter().find_map(|(k, v)| match (k.as_str(), v) {
        (WORKER_FIELD, FieldValue::U64(w)) => Some(*w),
        _ => None,
    })
}

fn push_event(out: &mut String, first: &mut bool, event: &str) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str(event);
}

fn write_args(out: &mut String, fields: &[(String, FieldValue)]) {
    out.push_str("\"args\":{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&escape(k));
        out.push(':');
        v.write_json(out);
    }
    out.push('}');
}

/// Renders `tracer`'s records and writes the document to `path`
/// (parent directories are created). A disabled tracer writes an empty
/// but valid `{"traceEvents":[]}` document.
pub fn write_chrome_trace(tracer: &Tracer, path: &std::path::Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, chrome_trace_json(&tracer.records()))
}

/// Validates that `text` is a well-formed trace-event document: a JSON
/// object whose `traceEvents` array contains only objects with the
/// required keys (`name`/`ph` strings, numeric `ts`/`pid`/`tid`, and a
/// numeric `dur` on complete events). The `validate-obs` CI step runs
/// this over the exported artifact.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc = parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing traceEvents key")?
        .as_arr()
        .ok_or("traceEvents is not an array")?;
    for (i, ev) in events.iter().enumerate() {
        let ctx = |msg: &str| format!("event {i}: {msg}");
        if !matches!(ev, Value::Obj(_)) {
            return Err(ctx("not an object"));
        }
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| ctx("missing ph"))?;
        ev.get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| ctx("missing name"))?;
        for key in ["pid", "tid"] {
            ev.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| ctx(&format!("missing numeric {key}")))?;
        }
        match ph {
            "M" => {}
            "X" => {
                ev.get("ts")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| ctx("missing numeric ts"))?;
                ev.get("dur")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| ctx("complete event missing dur"))?;
            }
            "i" => {
                ev.get("ts")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| ctx("missing numeric ts"))?;
            }
            other => return Err(ctx(&format!("unsupported phase {other:?}"))),
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(
        id: u64,
        parent: Option<u64>,
        name: &str,
        start_us: u64,
        dur_us: u64,
        fields: Vec<(&str, FieldValue)>,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: name.to_string(),
            start_us,
            dur_us,
            fields: fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        }
    }

    #[test]
    fn empty_records_still_produce_a_valid_document() {
        let doc = chrome_trace_json(&[]);
        assert_eq!(validate_chrome_trace(&doc).unwrap(), 0);
    }

    #[test]
    fn worker_field_assigns_lanes_and_descendants_inherit() {
        let records = vec![
            record(1, None, "join", 0, 100, vec![]),
            record(
                2,
                Some(1),
                "worker-loop",
                5,
                90,
                vec![("worker", FieldValue::U64(2))],
            ),
            record(3, Some(2), "unit", 10, 20, vec![]),
        ];
        let doc = chrome_trace_json(&records);
        validate_chrome_trace(&doc).unwrap();
        let parsed = parse(&doc).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        let tid_of = |name: &str| {
            events
                .iter()
                .find(|e| {
                    e.get("name").unwrap().as_str() == Some(name)
                        && e.get("ph").unwrap().as_str() != Some("M")
                })
                .and_then(|e| e.get("tid").unwrap().as_f64())
                .unwrap()
        };
        assert_eq!(tid_of("join"), 0.0);
        assert_eq!(tid_of("worker-loop"), 3.0);
        assert_eq!(tid_of("unit"), 3.0, "descendants inherit the worker lane");
        // Lane metadata present for both lanes.
        let meta: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .as_str()
                    .unwrap()
            })
            .collect();
        assert!(meta.contains(&"coordinator"));
        assert!(meta.contains(&"worker 2"));
    }

    #[test]
    fn drift_breaches_become_instants_and_steals_get_markers() {
        let records = vec![
            record(
                1,
                None,
                "unit",
                0,
                50,
                vec![("stolen", FieldValue::Bool(true))],
            ),
            record(
                2,
                Some(1),
                DRIFT_BREACH_SPAN,
                30,
                0,
                vec![("target", FieldValue::Str("da.total".into()))],
            ),
        ];
        let doc = chrome_trace_json(&records);
        validate_chrome_trace(&doc).unwrap();
        let parsed = parse(&doc).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        let instants: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("i"))
            .map(|e| e.get("name").unwrap().as_str().unwrap())
            .collect();
        assert!(instants.contains(&DRIFT_BREACH_SPAN));
        assert!(instants.contains(&"steal"));
        // The breach is not also a duration slice.
        assert!(!events.iter().any(|e| {
            e.get("ph").unwrap().as_str() == Some("X")
                && e.get("name").unwrap().as_str() == Some(DRIFT_BREACH_SPAN)
        }));
    }

    #[test]
    fn args_carry_span_fields() {
        let records = vec![record(
            1,
            None,
            "unit",
            0,
            10,
            vec![
                ("na", FieldValue::U64(42)),
                ("label", FieldValue::Str("a\"b".into())),
            ],
        )];
        let doc = chrome_trace_json(&records);
        validate_chrome_trace(&doc).unwrap();
        let parsed = parse(&doc).unwrap();
        let ev = &parsed.get("traceEvents").unwrap().as_arr().unwrap()[1];
        assert_eq!(
            ev.get("args").unwrap().get("na").unwrap().as_f64(),
            Some(42.0)
        );
        assert_eq!(
            ev.get("args").unwrap().get("label").unwrap().as_str(),
            Some("a\"b")
        );
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}")
            .unwrap_err()
            .contains("traceEvents"));
        assert!(validate_chrome_trace("{\"traceEvents\":{}}").is_err());
        // Missing dur on a complete event.
        let bad = "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\",\"ts\":0,\"pid\":1,\"tid\":0}]}";
        assert!(validate_chrome_trace(bad).unwrap_err().contains("dur"));
        // Unsupported phase.
        let bad = "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"Q\",\"ts\":0,\"pid\":1,\"tid\":0}]}";
        assert!(validate_chrome_trace(bad).unwrap_err().contains("phase"));
    }

    #[test]
    fn live_tracer_round_trip() {
        let t = Tracer::enabled();
        {
            let root = t.span("join");
            let mut w = root.child("worker-loop");
            w.set("worker", 0u64);
            let _u = w.child("unit");
        }
        let doc = chrome_trace_json(&t.records());
        let n = validate_chrome_trace(&doc).unwrap();
        // 2 lanes of metadata + 3 spans.
        assert_eq!(n, 5);
    }
}
