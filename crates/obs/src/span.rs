//! Hierarchical timed spans with a JSONL sink.
//!
//! A [`Tracer`] is either **enabled** (it owns a shared record buffer)
//! or **disabled** (it owns nothing). Every operation on a disabled
//! tracer — opening a span, attaching a field, dropping the guard — is
//! a single `Option` discriminant check: no clock read, no allocation,
//! no lock. That is the "no-op sink" guarantee the execution layers
//! rely on when they thread a tracer through their hot paths.
//!
//! Spans form a tree through explicit parent links ([`Span::child`],
//! or [`Tracer::span_under`] when the parent id has to cross a thread
//! boundary, as in the parallel join's per-unit spans). Records are
//! buffered in completion order and serialized one JSON object per
//! line by [`Tracer::to_jsonl`] / [`Tracer::write_jsonl`];
//! [`Tracer::tree_summary`] renders the same records as an indented
//! human-readable tree.

use crate::json::escape;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A field value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (counts, ids).
    U64(u64),
    /// Floating point (ratios, costs).
    F64(f64),
    /// Short string (labels).
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl FieldValue {
    pub(crate) fn write_json(&self, out: &mut String) {
        match self {
            FieldValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::F64(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            // JSON has no NaN/Inf; null keeps the line parseable.
            FieldValue::F64(_) => out.push_str("null"),
            FieldValue::Str(s) => out.push_str(&escape(s)),
            FieldValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
        }
    }
}

/// One completed span, as buffered by the tracer.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id within this tracer (1-based, allocation order).
    pub id: u64,
    /// Parent span id, `None` for roots.
    pub parent: Option<u64>,
    /// Span name (e.g. `"frontier-descent"`).
    pub name: String,
    /// Start offset from the tracer's epoch, microseconds.
    pub start_us: u64,
    /// Wall-clock duration, microseconds.
    pub dur_us: u64,
    /// Attached fields, in attachment order.
    pub fields: Vec<(String, FieldValue)>,
}

struct Inner {
    epoch: Instant,
    next_id: AtomicU64,
    records: Mutex<Vec<SpanRecord>>,
}

/// The span collector. Cheap to clone (shared buffer); see the module
/// docs for the disabled-mode guarantee.
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Tracer {
    /// A tracer whose every operation is a no-op.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A collecting tracer.
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                records: Mutex::new(Vec::new()),
            })),
        }
    }

    /// `true` when spans are being collected.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a root span. The span records itself when dropped (or on
    /// [`Span::finish`]).
    #[inline]
    pub fn span(&self, name: &str) -> Span {
        self.span_under(None, name)
    }

    /// Opens a span under an explicit parent id — the cross-thread form
    /// of [`Span::child`] (span ids are plain `u64`s and can be shipped
    /// to worker threads).
    #[inline]
    pub fn span_under(&self, parent: Option<u64>, name: &str) -> Span {
        match &self.inner {
            None => Span { live: None },
            Some(inner) => {
                let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
                Span {
                    live: Some(LiveSpan {
                        inner: Arc::clone(inner),
                        id,
                        parent,
                        name: name.to_string(),
                        started: Instant::now(),
                        fields: Vec::new(),
                    }),
                }
            }
        }
    }

    /// Snapshot of all completed spans, in completion order.
    pub fn records(&self) -> Vec<SpanRecord> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.records.lock().expect("tracer poisoned").clone(),
        }
    }

    /// Per-name aggregates `(count, total microseconds)`, sorted by
    /// name — what the bench harness attaches to its BENCH JSON lines.
    pub fn totals_by_name(&self) -> Vec<(String, u64, u64)> {
        let mut map: std::collections::BTreeMap<String, (u64, u64)> = Default::default();
        for r in self.records() {
            let e = map.entry(r.name).or_insert((0, 0));
            e.0 += 1;
            e.1 += r.dur_us;
        }
        map.into_iter().map(|(n, (c, t))| (n, c, t)).collect()
    }

    /// All completed spans as JSONL: one
    /// `{"type":"span","id":…,"parent":…,"name":…,"start_us":…,"dur_us":…,"fields":{…}}`
    /// object per line. Empty string when disabled or nothing recorded.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in self.records() {
            let _ = write!(out, "{{\"type\":\"span\",\"id\":{},\"parent\":", r.id);
            match r.parent {
                Some(p) => {
                    let _ = write!(out, "{p}");
                }
                None => out.push_str("null"),
            }
            let _ = write!(
                out,
                ",\"name\":{},\"start_us\":{},\"dur_us\":{},\"fields\":{{",
                escape(&r.name),
                r.start_us,
                r.dur_us
            );
            for (i, (k, v)) in r.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&escape(k));
                out.push(':');
                v.write_json(&mut out);
            }
            out.push_str("}}\n");
        }
        out
    }

    /// Writes [`Tracer::to_jsonl`] to `path` (parent directories are
    /// created). A disabled tracer writes an empty file, so a `--trace`
    /// flag always produces its artifact.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_jsonl())
    }

    /// Renders the span tree: children indented under their parents (in
    /// start order), with durations and fields. Roots ordered by start.
    pub fn tree_summary(&self) -> String {
        let mut records = self.records();
        records.sort_by_key(|r| (r.start_us, r.id));
        let mut children: std::collections::BTreeMap<Option<u64>, Vec<usize>> = Default::default();
        for (i, r) in records.iter().enumerate() {
            children.entry(r.parent).or_default().push(i);
        }
        let mut out = String::new();
        fn render(
            records: &[SpanRecord],
            children: &std::collections::BTreeMap<Option<u64>, Vec<usize>>,
            parent: Option<u64>,
            depth: usize,
            out: &mut String,
        ) {
            let Some(kids) = children.get(&parent) else {
                return;
            };
            for &i in kids {
                let r = &records[i];
                let _ = write!(
                    out,
                    "{:indent$}{}  {:.3} ms",
                    "",
                    r.name,
                    r.dur_us as f64 / 1000.0,
                    indent = depth * 2
                );
                for (k, v) in &r.fields {
                    let mut s = String::new();
                    v.write_json(&mut s);
                    let _ = write!(out, "  {k}={s}");
                }
                out.push('\n');
                render(records, children, Some(r.id), depth + 1, out);
            }
        }
        render(&records, &children, None, 0, &mut out);
        out
    }
}

struct LiveSpan {
    inner: Arc<Inner>,
    id: u64,
    parent: Option<u64>,
    name: String,
    started: Instant,
    fields: Vec<(String, FieldValue)>,
}

/// An open span; records itself into the tracer when dropped. All
/// methods are no-ops for spans of a disabled tracer.
pub struct Span {
    live: Option<LiveSpan>,
}

impl Span {
    /// This span's id, `None` when the tracer is disabled. Ship it to
    /// another thread and reparent with [`Tracer::span_under`].
    #[inline]
    pub fn id(&self) -> Option<u64> {
        self.live.as_ref().map(|l| l.id)
    }

    /// Opens a child span.
    #[inline]
    pub fn child(&self, name: &str) -> Span {
        match &self.live {
            None => Span { live: None },
            Some(live) => Tracer {
                inner: Some(Arc::clone(&live.inner)),
            }
            .span_under(Some(live.id), name),
        }
    }

    /// Attaches a `key = value` field.
    #[inline]
    pub fn set(&mut self, key: &str, value: impl Into<FieldValue>) {
        if let Some(live) = &mut self.live {
            live.fields.push((key.to_string(), value.into()));
        }
    }

    /// Completes the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let start_us = live
            .started
            .saturating_duration_since(live.inner.epoch)
            .as_micros() as u64;
        let dur_us = live.started.elapsed().as_micros() as u64;
        let record = SpanRecord {
            id: live.id,
            parent: live.parent,
            name: live.name,
            start_us,
            dur_us,
            fields: live.fields,
        };
        live.inner
            .records
            .lock()
            .expect("tracer poisoned")
            .push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        let mut s = t.span("root");
        s.set("k", 1u64);
        let c = s.child("inner");
        assert_eq!(c.id(), None);
        drop(c);
        drop(s);
        assert!(t.records().is_empty());
        assert_eq!(t.to_jsonl(), "");
        assert_eq!(t.tree_summary(), "");
    }

    #[test]
    fn spans_nest_and_record_in_completion_order() {
        let t = Tracer::enabled();
        let mut root = t.span("root");
        root.set("n", 42u64);
        {
            let mut child = root.child("child");
            child.set("label", "x");
        }
        drop(root);
        let records = t.records();
        assert_eq!(records.len(), 2);
        // Child completes first.
        assert_eq!(records[0].name, "child");
        assert_eq!(records[0].parent, Some(records[1].id));
        assert_eq!(records[1].name, "root");
        assert_eq!(records[1].parent, None);
        assert_eq!(
            records[1].fields,
            vec![("n".to_string(), FieldValue::U64(42))]
        );
    }

    #[test]
    fn jsonl_lines_parse_and_carry_required_keys() {
        let t = Tracer::enabled();
        {
            let mut s = t.span("a \"quoted\" name");
            s.set("ratio", 0.5f64);
            s.set("nan", f64::NAN); // must serialize as null, not NaN
            s.set("flag", true);
        }
        let jsonl = t.to_jsonl();
        for line in jsonl.lines() {
            let v = parse(line).expect("line parses");
            for key in [
                "type", "id", "parent", "name", "start_us", "dur_us", "fields",
            ] {
                assert!(v.get(key).is_some(), "missing {key} in {line}");
            }
            assert_eq!(v.get("type").unwrap().as_str(), Some("span"));
            let fields = v.get("fields").unwrap();
            assert_eq!(fields.get("ratio").unwrap().as_f64(), Some(0.5));
            assert!(matches!(fields.get("nan"), Some(crate::json::Value::Null)));
        }
    }

    #[test]
    fn cross_thread_reparenting_via_span_under() {
        let t = Tracer::enabled();
        let root = t.span("root");
        let root_id = root.id();
        std::thread::scope(|scope| {
            for w in 0..3u64 {
                let t = t.clone();
                scope.spawn(move || {
                    let mut s = t.span_under(root_id, "unit");
                    s.set("worker", w);
                });
            }
        });
        drop(root);
        let records = t.records();
        assert_eq!(records.len(), 4);
        let root_rec = records.iter().find(|r| r.name == "root").unwrap();
        assert_eq!(
            records
                .iter()
                .filter(|r| r.parent == Some(root_rec.id))
                .count(),
            3
        );
    }

    #[test]
    fn tree_summary_indents_children() {
        let t = Tracer::enabled();
        {
            let root = t.span("root");
            let _child = root.child("leafwork");
        }
        let tree = t.tree_summary();
        let lines: Vec<&str> = tree.lines().collect();
        assert!(lines[0].starts_with("root"));
        assert!(lines[1].starts_with("  leafwork"));
    }

    #[test]
    fn totals_aggregate_by_name() {
        let t = Tracer::enabled();
        for _ in 0..3 {
            t.span("unit").finish();
        }
        t.span("build").finish();
        let totals = t.totals_by_name();
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0].0, "build");
        assert_eq!(totals[0].1, 1);
        assert_eq!(totals[1].0, "unit");
        assert_eq!(totals[1].1, 3);
    }
}
