//! The model-vs-actual drift monitor.
//!
//! The paper's evaluation (§4.1) claims the analytical formulas track
//! the measured NA/DA within roughly a 15% relative-error envelope.
//! The [`DriftMonitor`] turns that claim into a *live* check: the
//! per-level predictions (Eq 6 for NA, Eqs 8–12 for DA) are registered
//! **before** the join runs ([`DriftMonitor::predict`]); while the join
//! progresses, running counters can be tested against the envelope
//! in-flight ([`DriftMonitor::observe_in_flight`] — a counter that
//! already *exceeds* `prediction × (1 + envelope)` is a breach no
//! matter how much work remains, so overruns are flagged before the run
//! finishes); when the run completes, every target gets its final
//! relative-error gauge ([`DriftMonitor::observe`], published to a
//! [`MetricsRegistry`] as `drift.<name>` by
//! [`DriftMonitor::publish`]).
//!
//! Target names are dotted paths, matching the metrics convention:
//! `na.r1.l2` (tree R1, paper level 2), `da.r2.l1`, and the totals
//! [`NA_TOTAL`] / [`DA_TOTAL`] the execution layer uses for its
//! in-flight checks.

use crate::metrics::MetricsRegistry;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Target name for the whole-join NA prediction (both trees).
pub const NA_TOTAL: &str = "na.total";
/// Target name for the whole-join DA prediction (both trees).
pub const DA_TOTAL: &str = "da.total";

/// The paper's accuracy envelope: ~15% relative error (§4.1).
pub const PAPER_ENVELOPE: f64 = 0.15;

#[derive(Debug, Clone)]
struct Target {
    predicted: f64,
    actual: Option<f64>,
    overrun: bool,
}

/// One evaluated prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftSample {
    /// Target name (e.g. `na.r1.l1`).
    pub name: String,
    /// Registered prediction.
    pub predicted: f64,
    /// Observed value.
    pub actual: f64,
    /// `|predicted − actual| / actual` (`∞` when `actual` is 0 and
    /// `predicted` is not).
    pub rel_err: f64,
    /// `rel_err ≤ envelope`.
    pub within: bool,
    /// The running counter crossed `predicted × (1 + envelope)` while
    /// the join was still in flight.
    pub overrun: bool,
}

/// Collects predictions up front, checks observations against them.
/// Thread-safe; the parallel join's workers call
/// [`DriftMonitor::observe_in_flight`] concurrently.
#[derive(Debug)]
pub struct DriftMonitor {
    envelope: f64,
    targets: Mutex<BTreeMap<String, Target>>,
}

impl Default for DriftMonitor {
    fn default() -> Self {
        Self::new(PAPER_ENVELOPE)
    }
}

impl DriftMonitor {
    /// A monitor with the given relative-error envelope (0.15 = the
    /// paper's ~15%).
    pub fn new(envelope: f64) -> Self {
        assert!(envelope > 0.0, "envelope must be positive");
        Self {
            envelope,
            targets: Mutex::new(BTreeMap::new()),
        }
    }

    /// The configured envelope.
    pub fn envelope(&self) -> f64 {
        self.envelope
    }

    /// Registers (or overwrites) the prediction for `name`.
    pub fn predict(&self, name: &str, predicted: f64) {
        let mut t = self.targets.lock().expect("drift poisoned");
        t.insert(
            name.to_string(),
            Target {
                predicted,
                actual: None,
                overrun: false,
            },
        );
    }

    /// Number of registered targets.
    pub fn target_count(&self) -> usize {
        self.targets.lock().expect("drift poisoned").len()
    }

    /// In-flight check: has the running counter for `name` already
    /// exceeded its prediction by more than the envelope? Records the
    /// overrun (sticky) and returns `true` on breach. Unknown names
    /// return `false` — the execution layer does not need to know which
    /// targets the caller registered.
    pub fn observe_in_flight(&self, name: &str, actual_so_far: f64) -> bool {
        let mut targets = self.targets.lock().expect("drift poisoned");
        let Some(target) = targets.get_mut(name) else {
            return false;
        };
        if actual_so_far > target.predicted * (1.0 + self.envelope) {
            target.overrun = true;
        }
        target.overrun
    }

    /// Final observation for `name`: stores `actual` and returns the
    /// evaluated sample. `None` when no prediction was registered.
    pub fn observe(&self, name: &str, actual: f64) -> Option<DriftSample> {
        let mut targets = self.targets.lock().expect("drift poisoned");
        let target = targets.get_mut(name)?;
        target.actual = Some(actual);
        Some(sample(name, target, self.envelope))
    }

    /// Every observed target, sorted by name.
    pub fn samples(&self) -> Vec<DriftSample> {
        let targets = self.targets.lock().expect("drift poisoned");
        targets
            .iter()
            .filter(|(_, t)| t.actual.is_some())
            .map(|(name, t)| sample(name, t, self.envelope))
            .collect()
    }

    /// The targets currently in breach: observed outside the envelope,
    /// or flagged as in-flight overruns (even if never finally
    /// observed).
    pub fn breaches(&self) -> Vec<DriftSample> {
        let targets = self.targets.lock().expect("drift poisoned");
        targets
            .iter()
            .filter(|(_, t)| t.overrun || t.actual.is_some())
            .map(|(name, t)| sample(name, t, self.envelope))
            .filter(|s| !s.within || s.overrun)
            .collect()
    }

    /// `true` when every observed target is inside the envelope and no
    /// in-flight overrun fired.
    pub fn all_within(&self) -> bool {
        self.breaches().is_empty()
    }

    /// Publishes the evaluation into `metrics`: one gauge
    /// `drift.<name>` per observed target (the relative error), the
    /// envelope as `drift.envelope`, and the breach count as the
    /// `drift.breaches` counter.
    pub fn publish(&self, metrics: &MetricsRegistry) {
        metrics.gauge_set("drift.envelope", self.envelope);
        for s in self.samples() {
            metrics.gauge_set(&format!("drift.{}", s.name), s.rel_err);
        }
        metrics.counter_add("drift.breaches", self.breaches().len() as u64);
    }
}

fn sample(name: &str, target: &Target, envelope: f64) -> DriftSample {
    // An overrun target that was never finally observed reports the
    // overrun threshold itself as a lower bound on the actual value.
    let actual = target.actual.unwrap_or(f64::NAN);
    let rel_err = if actual == 0.0 {
        if target.predicted == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (target.predicted - actual).abs() / actual
    };
    DriftSample {
        name: name.to_string(),
        predicted: target.predicted,
        actual,
        rel_err,
        within: rel_err <= envelope,
        overrun: target.overrun,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_envelope_passes() {
        let d = DriftMonitor::new(0.15);
        d.predict("na.total", 1000.0);
        let s = d.observe("na.total", 950.0).unwrap();
        assert!(s.within);
        assert!((s.rel_err - 50.0 / 950.0).abs() < 1e-12);
        assert!(d.all_within());
    }

    #[test]
    fn outside_envelope_is_a_breach() {
        let d = DriftMonitor::new(0.15);
        d.predict("da.total", 100.0);
        let s = d.observe("da.total", 200.0).unwrap();
        assert!(!s.within);
        assert_eq!(d.breaches().len(), 1);
        assert!(!d.all_within());
    }

    #[test]
    fn in_flight_overrun_is_sticky_and_one_sided() {
        let d = DriftMonitor::new(0.15);
        d.predict("na.total", 100.0);
        // Under-prediction mid-run is not a breach — most of the join
        // may simply not have run yet.
        assert!(!d.observe_in_flight("na.total", 50.0));
        assert!(!d.observe_in_flight("na.total", 114.0)); // inside the envelope
        assert!(d.observe_in_flight("na.total", 116.0));
        // Sticky: later smaller readings don't clear it.
        assert!(d.observe_in_flight("na.total", 10.0));
        assert!(!d.all_within());
        assert_eq!(d.breaches().len(), 1);
        assert!(d.breaches()[0].overrun);
    }

    #[test]
    fn unknown_targets_are_ignored() {
        let d = DriftMonitor::new(0.15);
        assert!(!d.observe_in_flight("nope", 1e9));
        assert!(d.observe("nope", 1.0).is_none());
        assert!(d.all_within());
    }

    #[test]
    fn zero_actual_guard() {
        let d = DriftMonitor::new(0.15);
        d.predict("a", 0.0);
        d.predict("b", 5.0);
        assert!(d.observe("a", 0.0).unwrap().within);
        let s = d.observe("b", 0.0).unwrap();
        assert!(s.rel_err.is_infinite());
        assert!(!s.within);
    }

    #[test]
    fn publish_writes_gauges_and_breach_counter() {
        let d = DriftMonitor::new(0.15);
        d.predict("na.r1.l1", 100.0);
        d.predict("na.r1.l2", 100.0);
        d.observe("na.r1.l1", 98.0);
        d.observe("na.r1.l2", 160.0);
        let m = MetricsRegistry::new();
        d.publish(&m);
        assert_eq!(m.gauge("drift.envelope"), Some(0.15));
        assert!(m.gauge("drift.na.r1.l1").unwrap() < 0.15);
        assert!(m.gauge("drift.na.r1.l2").unwrap() > 0.15);
        assert_eq!(m.counter("drift.breaches"), 1);
    }

    #[test]
    fn concurrent_in_flight_checks() {
        let d = DriftMonitor::new(0.15);
        d.predict(NA_TOTAL, 1000.0);
        std::thread::scope(|scope| {
            for i in 0..8u64 {
                let d = &d;
                scope.spawn(move || {
                    d.observe_in_flight(NA_TOTAL, (i * 200) as f64);
                });
            }
        });
        // 1400 > 1150 ⇒ someone tripped it.
        assert!(!d.all_within());
    }
}
