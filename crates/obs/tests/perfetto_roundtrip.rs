//! Perfetto export round-trip over the executor's real span topology:
//! a live tracer emits the same shapes the parallel join does
//! (coordinator phases, per-worker loops carrying the `worker` field,
//! work units with steal markers, drift-breach and progress instants),
//! the export is validated, re-parsed, and every event type is checked
//! for presence and correct lane placement — progress instants must
//! ride the lane of the worker whose unit emitted them.

use sjcm_obs::json::{parse, Value};
use sjcm_obs::{
    chrome_trace_json, validate_chrome_trace, Tracer, DRIFT_BREACH_SPAN, PROGRESS_SPAN,
};

/// Builds a two-worker trace the way the cost-guided executor does:
/// schedule + frontier on the coordinator lane, one loop span per
/// worker, units under them, one progress instant per retired unit,
/// a steal on worker 1 and one drift breach under worker 0's unit.
fn executor_shaped_tracer() -> Tracer {
    let t = Tracer::enabled();
    {
        let root = t.span("cost-guided-join");
        {
            let _f = root.child("frontier-descent");
        }
        {
            let mut s = root.child("schedule");
            s.set("units", 3u64);
        }
        for worker in 0..2u64 {
            let mut w = root.child("worker");
            w.set("worker", worker);
            let stolen = worker == 1;
            let mut unit = w.child("unit");
            unit.set("unit", worker);
            unit.set("stolen", stolen);
            {
                let mut p = unit.child(PROGRESS_SPAN);
                p.set("unit", worker);
                p.set("cost", 100u64 * (worker + 1));
            }
            if worker == 0 {
                let mut b = unit.child(DRIFT_BREACH_SPAN);
                b.set("target", "na.total");
            }
        }
        // The watcher thread samples outside any worker span: its
        // progress instants belong on the coordinator lane.
        let mut p = root.child(PROGRESS_SPAN);
        p.set("fraction_milli", 500u64);
    }
    t
}

#[test]
fn every_event_type_survives_the_round_trip() {
    let tracer = executor_shaped_tracer();
    let doc = chrome_trace_json(&tracer.records());
    let n = validate_chrome_trace(&doc).expect("export must validate");
    let parsed = parse(&doc).expect("export must re-parse");
    let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
    assert_eq!(events.len(), n);

    let phase = |e: &Value| e.get("ph").unwrap().as_str().unwrap().to_string();
    let name = |e: &Value| e.get("name").unwrap().as_str().unwrap().to_string();

    // All three phases appear: lane metadata, duration slices, instants.
    for ph in ["M", "X", "i"] {
        assert!(
            events.iter().any(|e| phase(e) == ph),
            "no {ph:?} events in the export"
        );
    }
    // Every instant flavour appears: progress, drift breach, steal.
    let instants: Vec<String> = events
        .iter()
        .filter(|e| phase(e) == "i")
        .map(&name)
        .collect();
    for marker in [PROGRESS_SPAN, DRIFT_BREACH_SPAN, "steal"] {
        assert!(
            instants.iter().any(|n| n == marker),
            "missing {marker:?} instant among {instants:?}"
        );
    }
    // Instants never render a duration twin.
    for marker in [PROGRESS_SPAN, DRIFT_BREACH_SPAN] {
        assert!(
            !events.iter().any(|e| phase(e) == "X" && name(e) == marker),
            "{marker:?} must not also be a slice"
        );
    }
    // Both worker lanes plus the coordinator are named.
    let lanes: Vec<String> = events
        .iter()
        .filter(|e| phase(e) == "M")
        .map(|e| {
            e.get("args")
                .unwrap()
                .get("name")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string()
        })
        .collect();
    for lane in ["coordinator", "worker 0", "worker 1"] {
        assert!(lanes.iter().any(|l| l == lane), "missing lane {lane:?}");
    }
}

#[test]
fn progress_instants_land_on_their_workers_lane() {
    let tracer = executor_shaped_tracer();
    let doc = chrome_trace_json(&tracer.records());
    let parsed = parse(&doc).unwrap();
    let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();

    let progress: Vec<&Value> = events
        .iter()
        .filter(|e| {
            e.get("ph").unwrap().as_str() == Some("i")
                && e.get("name").unwrap().as_str() == Some(PROGRESS_SPAN)
        })
        .collect();
    assert_eq!(progress.len(), 3, "one per unit + the watcher sample");

    // Per-unit instants carry a `unit` arg equal to the worker index
    // here, so the expected lane is unit + 1; the watcher's instant
    // (no `unit` arg) belongs on the coordinator lane 0.
    let mut lanes_seen = Vec::new();
    for p in progress {
        let tid = p.get("tid").unwrap().as_f64().unwrap();
        match p.get("args").unwrap().get("unit").and_then(Value::as_f64) {
            Some(unit) => assert_eq!(
                tid,
                unit + 1.0,
                "unit {unit} progress instant on the wrong lane"
            ),
            None => assert_eq!(tid, 0.0, "watcher sample must sit on the coordinator lane"),
        }
        lanes_seen.push(tid);
    }
    lanes_seen.sort_by(f64::total_cmp);
    assert_eq!(lanes_seen, vec![0.0, 1.0, 2.0]);

    // Steal markers inherit the stolen unit's lane too.
    let steal = events
        .iter()
        .find(|e| e.get("name").unwrap().as_str() == Some("steal"))
        .expect("worker 1's unit was stolen");
    assert_eq!(steal.get("tid").unwrap().as_f64(), Some(2.0));
}
