//! EXPLAIN ANALYZE: per-operator predicted-vs-measured plan
//! instrumentation with error attribution.
//!
//! The optimizer prices a plan from catalog statistics (Eqs 1–12); the
//! executor runs it and counts real accesses. This module closes the
//! loop *per operator*: [`Explainer::analyze`] executes a
//! [`PhysicalPlan`] through [`PlanExecutor::run_measured`] and returns
//! an [`AnalyzedPlan`] — every [`PlanNode`] annotated with its measured
//! NA/DA, output cardinality and wall-time span, side by side with its
//! [`Estimate`].
//!
//! For each operator the relative error is decomposed the way the
//! paper's §4 validation separates its sources:
//!
//! * **catalog error** — re-estimate the operator with *post-hoc
//!   measured tree parameters* ([`RTree::stats`]: actual heights, node
//!   counts, per-level extents and densities) and measured `(N, D)`
//!   instead of the [`DatasetStats`] priors; the difference between the
//!   prior and this re-estimate is what stale statistics cost;
//! * **residual model error** — the re-estimate against the measured
//!   value; what remains is the formulas' own bias, judged against the
//!   paper's ±15% envelope exactly like the drift monitor's verdicts.
//!
//! The result renders three ways: an annotated ASCII tree
//! ([`AnalyzedPlan`]'s `Display`), a `plan_analyze.jsonl` obs artifact
//! ([`AnalyzedPlan::to_jsonl`], validated by the experiments crate's
//! `validate-obs`), and the `experiments explain` command, whose
//! `--calibrate` mode feeds [`Explainer::calibrated`] back into a
//! persisted catalog so the next planning run uses observed statistics.

use crate::exec::{ExecError, ExecOutput, OpMeasurement, PlanExecutor};
use crate::model::LevelParams;
use crate::optimizer::cost::{CostError, CostEstimator};
use crate::optimizer::{Catalog, DatasetStats, Estimate, PhysicalPlan, PlanNode};
use crate::prelude::*;
use sjcm_geom::Rect;
use sjcm_rtree::TreeStats;
use std::cell::OnceCell;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// The paper's §4.1 relative-error envelope (±15%) used for the
/// per-operator verdicts.
pub const PAPER_ENVELOPE: f64 = 0.15;

/// Operators carrying less than this share of the plan's measured
/// model-comparable I/O are annotated but not gated — a 3-page probe
/// that the model prices at 5 pages is a 67% "error" with no bearing on
/// plan choice (the same floor the drift monitor applies per level).
pub const GATE_MASS_FLOOR: f64 = 0.03;

/// Analysis failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExplainError {
    /// Plan execution failed.
    Exec(ExecError),
    /// Cost (re-)estimation failed.
    Cost(CostError),
}

impl fmt::Display for ExplainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExplainError::Exec(e) => write!(f, "explain: {e}"),
            ExplainError::Cost(e) => write!(f, "explain: {e}"),
        }
    }
}

impl std::error::Error for ExplainError {}

impl From<ExecError> for ExplainError {
    fn from(e: ExecError) -> Self {
        ExplainError::Exec(e)
    }
}

impl From<CostError> for ExplainError {
    fn from(e: CostError) -> Self {
        ExplainError::Cost(e)
    }
}

/// Where an operator's cost misprediction comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attribution {
    /// The prior and the post-hoc re-estimate disagree more than the
    /// re-estimate and the measurement: stale/analytic catalog
    /// parameters dominate the miss.
    Catalog,
    /// The re-estimate still misses the measurement: the residual is
    /// the model's own.
    Model,
    /// Prediction within the envelope — nothing to attribute.
    Clean,
    /// The operator performs no model-priced I/O (scans, filters).
    Idle,
}

impl fmt::Display for Attribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Attribution::Catalog => write!(f, "catalog"),
            Attribution::Model => write!(f, "model"),
            Attribution::Clean | Attribution::Idle => write!(f, "-"),
        }
    }
}

/// One analyzed operator: estimate, re-estimate, measurement, verdict.
#[derive(Debug, Clone)]
pub struct AnalyzedNode {
    /// Operator label (as rendered by the executor, e.g. `Join[SJ]`).
    pub label: String,
    /// Position in the plan tree (see [`OpMeasurement::path`]).
    pub path: Vec<usize>,
    /// The planner's prior estimate (cumulative `cost` + `own_cost`).
    pub estimate: Estimate,
    /// Post-hoc re-estimate from measured tree parameters and measured
    /// `(N, D)`.
    pub reestimate: Estimate,
    /// Measured counters of this operator alone.
    pub measured: OpMeasurement,
    /// Relative error of the prior against the measured
    /// model-comparable I/O (`|est − meas| / meas`; infinite when the
    /// model predicted I/O for an operator that performed none).
    pub err: f64,
    /// Share of the error explained by catalog/parameter staleness
    /// (`|est − reest| / meas`).
    pub catalog_err: f64,
    /// Residual model error (`|reest − meas| / meas`).
    pub model_err: f64,
    /// Dominant error source.
    pub attribution: Attribution,
    /// Whether this operator carries enough I/O mass to gate.
    pub gated: bool,
    /// Envelope verdict on the *residual* model error, for gated
    /// operators (`None` = ungated).
    pub within: Option<bool>,
    /// Child operators (join: `[data, query]`; filter: `[input]`).
    pub children: Vec<AnalyzedNode>,
}

impl AnalyzedNode {
    fn visit<'s>(&'s self, out: &mut Vec<&'s AnalyzedNode>) {
        out.push(self);
        for c in &self.children {
            c.visit(out);
        }
    }
}

/// A fully analyzed plan.
#[derive(Debug, Clone)]
pub struct AnalyzedPlan {
    /// Root operator annotation.
    pub root: AnalyzedNode,
    /// Envelope the verdicts used.
    pub envelope: f64,
    /// Prior total cost (the planner's ranking key).
    pub est_cost: f64,
    /// Post-hoc total cost.
    pub reest_cost: f64,
    /// Measured model-comparable I/O of the whole plan.
    pub measured_cost_io: u64,
    /// Total logical node accesses.
    pub na: u64,
    /// Total buffer misses.
    pub da: u64,
    /// Result rows.
    pub rows: u64,
    /// Total wall time across operators, microseconds.
    pub wall_us: u64,
}

impl AnalyzedPlan {
    /// All operators, pre-order.
    pub fn nodes(&self) -> Vec<&AnalyzedNode> {
        let mut out = Vec::new();
        self.root.visit(&mut out);
        out
    }

    /// `true` iff every gated operator's residual model error is within
    /// the envelope.
    pub fn all_within(&self) -> bool {
        self.nodes().iter().all(|n| n.within.unwrap_or(true))
    }

    /// Plan-level relative error of the prior total against the
    /// measured model-comparable I/O.
    pub fn total_err(&self) -> f64 {
        rel_err(self.est_cost, self.measured_cost_io as f64)
    }

    /// Serializes the analysis as JSONL: one object per operator
    /// (pre-order), each carrying the full estimate/measure/attribution
    /// record — the `plan_analyze.jsonl` obs artifact.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (seq, n) in self.nodes().iter().enumerate() {
            let path = n
                .path
                .iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&format!(
                "{{\"schema\":\"sjcm.plan_analyze.v1\",\"seq\":{seq},\
                 \"op\":{op},\"path\":[{path}],\
                 \"est_cost\":{est:.3},\"reest_cost\":{reest:.3},\
                 \"est_rows\":{est_rows:.3},\
                 \"na\":{na},\"da\":{da},\"cost_io\":{cost_io},\
                 \"rows\":{rows},\"wall_us\":{wall},\
                 \"err\":{err},\"catalog_err\":{cerr},\"model_err\":{merr},\
                 \"attribution\":{attr},\"gated\":{gated},\
                 \"within\":{within},\"envelope\":{env}}}\n",
                op = crate::obs::json::escape(&n.label),
                est = n.estimate.own_cost,
                reest = n.reestimate.own_cost,
                est_rows = n.estimate.cardinality,
                na = n.measured.na,
                da = n.measured.da,
                cost_io = n.measured.cost_io,
                rows = n.measured.rows,
                wall = n.measured.wall_us,
                err = json_err(n.err),
                cerr = json_err(n.catalog_err),
                merr = json_err(n.model_err),
                attr = crate::obs::json::escape(&n.attribution.to_string()),
                gated = n.gated,
                within = match n.within {
                    Some(b) => b.to_string(),
                    None => "null".to_string(),
                },
                env = self.envelope,
            ));
        }
        out
    }
}

/// A relative error as a JSON number, `null` when non-finite.
fn json_err(e: f64) -> String {
    if e.is_finite() {
        format!("{e:.6}")
    } else {
        "null".to_string()
    }
}

fn pct(e: f64) -> String {
    if e.is_finite() {
        format!("{:.1}%", e * 100.0)
    } else {
        "inf".to_string()
    }
}

impl fmt::Display for AnalyzedPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "EXPLAIN ANALYZE (envelope ±{:.0}%; io = model-comparable page accesses)",
            self.envelope * 100.0
        )?;
        writeln!(
            f,
            "est. cost {:.0} | measured io {} (NA {}, DA {}) | err {} | {} rows in {:.1} ms",
            self.est_cost,
            self.measured_cost_io,
            self.na,
            self.da,
            pct(self.total_err()),
            self.rows,
            self.wall_us as f64 / 1000.0
        )?;
        let nodes = self.nodes();
        let label_w = nodes
            .iter()
            .map(|n| n.label.len() + 2 * n.path.len())
            .max()
            .unwrap_or(8)
            .max("operator".len());
        writeln!(
            f,
            "{:<label_w$}  {:>9}  {:>9}  {:>7}  {:>7}  {:>7}  {:>9}  {:>9}  {:<11}  verdict",
            "operator",
            "est.io",
            "meas.io",
            "err",
            "cat.err",
            "mod.err",
            "est.rows",
            "rows",
            "attribution",
        )?;
        for n in nodes {
            let indent = "  ".repeat(n.path.len());
            let verdict = match n.within {
                Some(true) => "ok",
                Some(false) => "BREACH",
                None => "-",
            };
            writeln!(
                f,
                "{:<label_w$}  {:>9.1}  {:>9}  {:>7}  {:>7}  {:>7}  {:>9.0}  {:>9}  {:<11}  {}",
                format!("{indent}{}", n.label),
                n.estimate.own_cost,
                n.measured.cost_io,
                pct(n.err),
                pct(n.catalog_err),
                pct(n.model_err),
                n.estimate.cardinality,
                n.measured.rows,
                n.attribution.to_string(),
                verdict,
            )?;
        }
        Ok(())
    }
}

/// Relative error with a zero-measurement guard.
fn rel_err(estimate: f64, measured: f64) -> f64 {
    if measured == 0.0 {
        if estimate.abs() < 0.5 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (estimate - measured).abs() / measured
    }
}

/// Converts measured per-level tree statistics into model parameters
/// (the post-hoc arm of the attribution).
fn measured_params<const N: usize>(stats: &TreeStats) -> TreeParams<N> {
    let levels = stats
        .levels
        .iter()
        .map(|l| {
            let mut extents = [0.0; N];
            extents.copy_from_slice(&l.avg_extents);
            LevelParams {
                nodes: l.node_count as f64,
                extents,
                density: l.density,
            }
        })
        .collect();
    TreeParams::from_levels(levels)
}

/// EXPLAIN ANALYZE driver: binds data sets, executes plans with full
/// instrumentation, and attributes per-operator error.
pub struct Explainer<'a, const N: usize> {
    catalog: &'a Catalog<N>,
    executor: PlanExecutor<'a, N>,
    datasets: Vec<String>,
    envelope: f64,
    mass_floor: f64,
    // One stats walk per bound tree, shared by the calibration stats
    // and the post-hoc parameters and reused across analyses — the
    // per-analysis overhead budget (see the bench guard) has no room
    // for re-walking the trees every time.
    stats_cache: OnceCell<BTreeMap<String, TreeStats>>,
}

impl<'a, const N: usize> Explainer<'a, N> {
    /// Creates an explainer over the catalog the plans were priced
    /// against, with the paper's envelope and the default mass floor.
    pub fn new(catalog: &'a Catalog<N>) -> Self {
        Self {
            catalog,
            executor: PlanExecutor::new(),
            datasets: Vec::new(),
            envelope: PAPER_ENVELOPE,
            mass_floor: GATE_MASS_FLOOR,
            stats_cache: OnceCell::new(),
        }
    }

    /// Binds a base data set by name (see [`PlanExecutor::bind`]).
    pub fn bind(mut self, name: &str, tree: &'a RTree<N>, objects: &'a [Rect<N>]) -> Self {
        self.executor = self.executor.bind(name, tree, objects);
        self.datasets.push(name.to_string());
        self.stats_cache = OnceCell::new();
        self
    }

    /// The cached per-dataset tree statistics (one walk per tree).
    fn tree_stats(&self) -> &BTreeMap<String, TreeStats> {
        self.stats_cache.get_or_init(|| {
            self.datasets
                .iter()
                .filter_map(|name| {
                    self.executor
                        .binding(name)
                        .map(|b| (name.clone(), b.tree.stats()))
                })
                .collect()
        })
    }

    /// Overrides the verdict envelope (the paper's ±15% by default).
    pub fn with_envelope(mut self, envelope: f64) -> Self {
        self.envelope = envelope;
        self
    }

    /// Overrides the gating mass floor.
    pub fn with_mass_floor(mut self, floor: f64) -> Self {
        self.mass_floor = floor;
        self
    }

    /// Sets the SJ worker count (counters are thread-invariant).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.executor = self.executor.with_threads(threads);
        self
    }

    /// Statistics measured from the bound trees: actual `N` (stored
    /// objects) and `D` (data density) per data set — what `--calibrate`
    /// writes back into the persisted catalog.
    pub fn measured_stats(&self) -> Vec<(String, DatasetStats<N>)> {
        self.tree_stats()
            .iter()
            .map(|(name, stats)| {
                let mut ds = DatasetStats::new(stats.num_objects as u64, stats.data_density);
                ds.indexed = self.catalog.get(name).is_none_or(|prior| prior.indexed);
                (name.clone(), ds)
            })
            .collect()
    }

    /// A copy of the catalog with every bound data set's statistics
    /// replaced by the measured ones (unbound entries untouched).
    pub fn calibrated(&self) -> Catalog<N> {
        let mut out = self.catalog.clone();
        for (name, stats) in self.measured_stats() {
            out.register(&name, stats);
        }
        out
    }

    /// Post-hoc measured tree parameters for every bound data set.
    fn posthoc_params(&self) -> BTreeMap<String, TreeParams<N>> {
        self.tree_stats()
            .iter()
            .map(|(name, stats)| (name.clone(), measured_params(stats)))
            .collect()
    }

    /// Executes the plan and annotates every operator (see the module
    /// docs for the attribution semantics).
    pub fn analyze(&self, plan: &PhysicalPlan<N>) -> Result<AnalyzedPlan, ExplainError> {
        let (out, ops) = self.executor.run_measured(plan)?;
        self.annotate_run(plan, &out, &ops)
    }

    /// Annotates an already-executed plan from its output and
    /// per-operator measurement stream — the post-processing half of
    /// [`Self::analyze`], exposed so a recorded run can be re-annotated
    /// (or the annotation layer timed) without re-executing the plan.
    pub fn annotate_run(
        &self,
        plan: &PhysicalPlan<N>,
        out: &ExecOutput<N>,
        ops: &[OpMeasurement],
    ) -> Result<AnalyzedPlan, ExplainError> {
        let mut by_path: HashMap<Vec<usize>, OpMeasurement> = HashMap::new();
        for m in ops {
            by_path.insert(m.path.clone(), m.clone());
        }
        let prior = CostEstimator::new(self.catalog);
        let calibrated = self.calibrated();
        let posthoc = CostEstimator::new(&calibrated).with_measured_params(self.posthoc_params());
        let total_io = out.cost_io;
        let mut path = Vec::new();
        let root = self.annotate(&plan.root, &prior, &posthoc, &by_path, total_io, &mut path)?;
        let (est_cost, reest_cost) = (root.estimate.cost, root.reestimate.cost);
        let wall_us = {
            let mut all = Vec::new();
            root.visit(&mut all);
            all.iter().map(|n| n.measured.wall_us).sum()
        };
        Ok(AnalyzedPlan {
            root,
            envelope: self.envelope,
            est_cost,
            reest_cost,
            measured_cost_io: out.cost_io,
            na: out.na,
            da: out.da,
            rows: out.rows.len() as u64,
            wall_us,
        })
    }

    fn annotate(
        &self,
        node: &PlanNode<N>,
        prior: &CostEstimator<'_, N>,
        posthoc: &CostEstimator<'_, N>,
        by_path: &HashMap<Vec<usize>, OpMeasurement>,
        total_io: u64,
        path: &mut Vec<usize>,
    ) -> Result<AnalyzedNode, ExplainError> {
        let estimate = prior.estimate(node)?;
        let reestimate = posthoc.estimate(node)?;
        let measured = by_path.get(path.as_slice()).cloned().unwrap_or_else(|| {
            // Unreached operator (e.g. short-circuited child): zeros.
            OpMeasurement {
                path: path.clone(),
                label: String::new(),
                na: 0,
                da: 0,
                cost_io: 0,
                rows: 0,
                wall_us: 0,
            }
        });
        let meas_io = measured.cost_io as f64;
        let err = rel_err(estimate.own_cost, meas_io);
        let catalog_err = rel_err_against(estimate.own_cost, reestimate.own_cost, meas_io);
        let model_err = rel_err(reestimate.own_cost, meas_io);
        let idle = measured.cost_io == 0 && estimate.own_cost.abs() < 0.5;
        let attribution = if idle {
            Attribution::Idle
        } else if err <= self.envelope {
            Attribution::Clean
        } else if (estimate.own_cost - reestimate.own_cost).abs()
            >= (reestimate.own_cost - meas_io).abs()
        {
            Attribution::Catalog
        } else {
            Attribution::Model
        };
        let gated = total_io > 0
            && measured.cost_io as f64 >= self.mass_floor * total_io as f64
            && measured.cost_io > 0;
        let within = if gated {
            Some(model_err <= self.envelope)
        } else {
            None
        };
        let label = if measured.label.is_empty() {
            op_label(node)
        } else {
            measured.label.clone()
        };
        let mut children = Vec::new();
        for (i, child) in node_children(node).into_iter().enumerate() {
            path.push(i);
            children.push(self.annotate(child, prior, posthoc, by_path, total_io, path)?);
            path.pop();
        }
        Ok(AnalyzedNode {
            label,
            path: path.clone(),
            estimate,
            reestimate,
            measured,
            err,
            catalog_err,
            model_err,
            attribution,
            gated,
            within,
            children,
        })
    }
}

/// `|prior − posthoc| / measured` with the same zero guard as
/// [`rel_err`].
fn rel_err_against(prior: f64, posthoc: f64, measured: f64) -> f64 {
    if measured == 0.0 {
        if (prior - posthoc).abs() < 0.5 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (prior - posthoc).abs() / measured
    }
}

fn op_label<const N: usize>(node: &PlanNode<N>) -> String {
    match node {
        PlanNode::IndexScan { dataset } => format!("IndexScan({dataset})"),
        PlanNode::IndexRangeSelect { dataset, .. } => format!("IndexRangeSelect({dataset})"),
        PlanNode::Filter { dataset, .. } => format!("Filter({dataset})"),
        PlanNode::Join { algorithm, .. } => format!("Join[{algorithm}]"),
    }
}

fn node_children<const N: usize>(node: &PlanNode<N>) -> Vec<&PlanNode<N>> {
    match node {
        PlanNode::IndexScan { .. } | PlanNode::IndexRangeSelect { .. } => Vec::new(),
        PlanNode::Filter { input, .. } => vec![input.as_ref()],
        PlanNode::Join { data, query, .. } => vec![data.as_ref(), query.as_ref()],
    }
}
