//! `sjcm` — command-line front end for the spatial-join cost-model
//! toolkit (2-D).
//!
//! ```text
//! sjcm gen      --kind uniform --n 20000 --density 0.5 --seed 1 --out data.json
//! sjcm build    --data data.json --out tree.pages
//! sjcm stats    --tree tree.pages
//! sjcm estimate --n1 60000 --d1 0.5 --n2 20000 --d2 0.5 [--corrected]
//! sjcm join     --tree1 a.pages --tree2 b.pages [--buffer path|none|lru:256]
//! sjcm explain  --datasets rivers:60000:0.2,countries:20000:0.4 \
//!               [--select rivers:0,0,0.45,1]
//! ```
//!
//! Datasets are JSON arrays of rectangles (`[[lo…],[hi…]]`); trees are
//! persisted in the paper's 1 KiB page format with a small JSON sidecar
//! (`<file>.meta`).

use sjcm::geom::{density, Rect};
use sjcm::json;
use sjcm::model::join::{join_cost_da, join_cost_na};
use sjcm::model::selectivity::join_selectivity;
use sjcm::optimizer::{Catalog, DatasetStats, JoinQuery, Planner};
use sjcm::prelude::*;
use sjcm::rtree::persist::PersistedTree;
use sjcm::storage::{FilePageStore, PageId};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), String>;

fn run() -> CliResult {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return Err(usage());
    };
    let flags = parse_flags(rest)?;
    match cmd.as_str() {
        "gen" => cmd_gen(&flags),
        "build" => cmd_build(&flags),
        "stats" => cmd_stats(&flags),
        "estimate" => cmd_estimate(&flags),
        "join" => cmd_join(&flags),
        "explain" => cmd_explain(&flags),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other}\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: sjcm <gen|build|stats|estimate|join|explain|help> [--flag value]...\n\
     run the doc comment at the top of src/bin/sjcm.rs for details"
        .to_string()
}

/// Flags that are boolean switches (present/absent, no value).
const SWITCH_FLAGS: &[&str] = &["corrected"];

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(flag) = it.next() {
        let key = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {flag}"))?;
        if SWITCH_FLAGS.contains(&key) {
            out.insert(key.to_string(), "true".to_string());
            continue;
        }
        let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        out.insert(key.to_string(), value.clone());
    }
    Ok(out)
}

fn get<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    flags
        .get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing --{key}"))
}

fn get_parse<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    get(flags, key)?
        .parse::<T>()
        .map_err(|e| format!("bad --{key}: {e}"))
}

// ---------------------------------------------------------------- gen

fn cmd_gen(flags: &HashMap<String, String>) -> CliResult {
    let kind = get(flags, "kind")?;
    let n: usize = get_parse(flags, "n")?;
    let seed: u64 = flags
        .get("seed")
        .map(|s| s.parse().map_err(|e| format!("bad --seed: {e}")))
        .transpose()?
        .unwrap_or(42);
    let d: f64 = flags
        .get("density")
        .map(|s| s.parse().map_err(|e| format!("bad --density: {e}")))
        .transpose()?
        .unwrap_or(0.5);
    let rects: Vec<Rect<2>> = match kind {
        "uniform" => {
            sjcm::datagen::uniform::generate(sjcm::datagen::uniform::UniformConfig::new(n, d, seed))
        }
        "clusters" => sjcm::datagen::skewed::gaussian_clusters(
            sjcm::datagen::skewed::ClusterConfig::new(n, d, seed),
        ),
        "powerlaw" => sjcm::datagen::skewed::power_law(n, d, 2.0, seed),
        "roads" => {
            sjcm::datagen::tiger::generate(sjcm::datagen::tiger::TigerConfig::roads(n, seed))
        }
        "hydro" => {
            sjcm::datagen::tiger::generate(sjcm::datagen::tiger::TigerConfig::hydro(n, seed))
        }
        other => {
            return Err(format!(
                "unknown --kind {other} (uniform|clusters|powerlaw|roads|hydro)"
            ))
        }
    };
    let out = PathBuf::from(get(flags, "out")?);
    let json = rects_to_json(&rects).to_string();
    std::fs::write(&out, json).map_err(|e| format!("write {out:?}: {e}"))?;
    println!(
        "wrote {} rectangles (D = {:.4}) to {}",
        rects.len(),
        density(rects.iter()),
        out.display()
    );
    Ok(())
}

// Rectangle datasets are stored as `[[[lo…],[hi…]], …]` — the same wire
// format the previous serde-based implementation produced.

fn rects_to_json(rects: &[Rect<2>]) -> json::Value {
    json::Value::Arr(
        rects
            .iter()
            .map(|r| {
                let corner = |p: [f64; 2]| {
                    json::Value::Arr(p.iter().map(|c| json::Value::Num(*c)).collect())
                };
                json::Value::Arr(vec![corner(r.lo().coords()), corner(r.hi().coords())])
            })
            .collect(),
    )
}

fn rects_from_json(v: &json::Value) -> Result<Vec<Rect<2>>, String> {
    let corner = |v: &json::Value| -> Result<[f64; 2], String> {
        let arr = v
            .as_arr()
            .filter(|a| a.len() == 2)
            .ok_or("corner must be [x, y]")?;
        Ok([
            arr[0]
                .as_f64()
                .ok_or("corner coordinate must be a number")?,
            arr[1]
                .as_f64()
                .ok_or("corner coordinate must be a number")?,
        ])
    };
    v.as_arr()
        .ok_or("dataset must be a JSON array".to_string())?
        .iter()
        .map(|entry| {
            let pair = entry
                .as_arr()
                .filter(|a| a.len() == 2)
                .ok_or("rectangle must be [lo, hi]")?;
            Rect::new(corner(&pair[0])?, corner(&pair[1])?).map_err(|e| e.to_string())
        })
        .collect()
}

fn load_rects(path: &Path) -> Result<Vec<Rect<2>>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
    let v = json::parse(&text).map_err(|e| format!("parse {path:?}: {e}"))?;
    rects_from_json(&v).map_err(|e| format!("parse {path:?}: {e}"))
}

// -------------------------------------------------------------- build

fn cmd_build(flags: &HashMap<String, String>) -> CliResult {
    let data = PathBuf::from(get(flags, "data")?);
    let out = PathBuf::from(get(flags, "out")?);
    let rects = load_rects(&data)?;
    let mut tree = RTree::<2>::new(RTreeConfig::paper(2));
    for (i, r) in rects.iter().enumerate() {
        tree.insert(*r, ObjectId(i as u32));
    }
    tree.check_invariants()
        .map_err(|e| format!("built tree failed validation: {e}"))?;
    let mut store = FilePageStore::create(&out, 1024).map_err(|e| format!("create store: {e}"))?;
    let handle = tree.save(&mut store).map_err(|e| format!("save: {e}"))?;
    write_meta(&out, handle)?;
    println!(
        "built R*-tree over {} objects: h = {}, {} nodes, persisted to {} (+.meta)",
        tree.len(),
        tree.height(),
        tree.node_count(),
        out.display()
    );
    Ok(())
}

fn meta_path(store: &Path) -> PathBuf {
    let mut p = store.as_os_str().to_owned();
    p.push(".meta");
    PathBuf::from(p)
}

fn write_meta(store: &Path, handle: PersistedTree) -> CliResult {
    let meta = json::Value::Obj(vec![
        ("root".into(), json::Value::Num(handle.root.index() as f64)),
        ("len".into(), json::Value::Num(handle.len as f64)),
        ("pages".into(), json::Value::Num(handle.pages as f64)),
        ("page_size".into(), json::Value::Num(1024.0)),
        ("dims".into(), json::Value::Num(2.0)),
    ]);
    std::fs::write(meta_path(store), meta.to_string()).map_err(|e| format!("write meta: {e}"))
}

fn load_tree(store_path: &Path) -> Result<RTree<2>, String> {
    let meta_text =
        std::fs::read_to_string(meta_path(store_path)).map_err(|e| format!("read meta: {e}"))?;
    let meta = json::parse(&meta_text).map_err(|e| format!("parse meta: {e}"))?;
    let handle = PersistedTree {
        root: PageId(
            meta.get("root")
                .and_then(json::Value::as_u64)
                .ok_or("meta: bad root")? as u32,
        ),
        len: meta
            .get("len")
            .and_then(json::Value::as_u64)
            .ok_or("meta: bad len")? as usize,
        pages: meta
            .get("pages")
            .and_then(json::Value::as_u64)
            .ok_or("meta: bad pages")? as usize,
    };
    let store = FilePageStore::open(store_path, 1024).map_err(|e| format!("open: {e}"))?;
    RTree::<2>::load(&store, handle, RTreeConfig::paper(2)).map_err(|e| format!("load: {e}"))
}

// -------------------------------------------------------------- stats

fn cmd_stats(flags: &HashMap<String, String>) -> CliResult {
    let tree = load_tree(Path::new(get(flags, "tree")?))?;
    let s = tree.stats();
    println!(
        "objects N = {}, data density D = {:.4}, height h = {}, avg fill c = {:.2}",
        s.num_objects, s.data_density, s.height, s.avg_utilization
    );
    println!("level  nodes     avg extent        density  fanout");
    for l in &s.levels {
        println!(
            "{:>5}  {:>6}  {:>7.5} x {:>7.5}  {:>7.3}  {:>6.1}",
            l.level, l.node_count, l.avg_extents[0], l.avg_extents[1], l.density, l.avg_fanout
        );
    }
    Ok(())
}

// ----------------------------------------------------------- estimate

fn cmd_estimate(flags: &HashMap<String, String>) -> CliResult {
    let n1: u64 = get_parse(flags, "n1")?;
    let d1: f64 = get_parse(flags, "d1")?;
    let n2: u64 = get_parse(flags, "n2")?;
    let d2: f64 = get_parse(flags, "d2")?;
    let cfg = if flags.contains_key("corrected") {
        ModelConfig::paper_corrected(2)
    } else {
        ModelConfig::paper(2)
    };
    let p1 = TreeParams::<2>::from_data(DataProfile::new(n1, d1), &cfg);
    let p2 = TreeParams::<2>::from_data(DataProfile::new(n2, d2), &cfg);
    println!(
        "R1: N = {n1}, D = {d1}, predicted h = {}   R2: N = {n2}, D = {d2}, predicted h = {}",
        p1.height(),
        p2.height()
    );
    println!(
        "join NA (Eq 7/11, no buffer)      ≈ {:.0}",
        join_cost_na(&p1, &p2)
    );
    println!(
        "join DA (Eq 10/12, path buffer)   ≈ {:.0}",
        join_cost_da(&p1, &p2)
    );
    println!(
        "selectivity (§5 ext.)              ≈ {:.0} pairs",
        join_selectivity::<2>(DataProfile::new(n1, d1), DataProfile::new(n2, d2))
    );
    Ok(())
}

// --------------------------------------------------------------- join

fn cmd_join(flags: &HashMap<String, String>) -> CliResult {
    let t1 = load_tree(Path::new(get(flags, "tree1")?))?;
    let t2 = load_tree(Path::new(get(flags, "tree2")?))?;
    let buffer = match flags.get("buffer").map(String::as_str).unwrap_or("path") {
        "path" => BufferPolicy::Path,
        "none" => BufferPolicy::None,
        other => {
            if let Some(cap) = other.strip_prefix("lru:") {
                BufferPolicy::Lru(cap.parse().map_err(|e| format!("bad lru size: {e}"))?)
            } else {
                return Err(format!("unknown --buffer {other} (path|none|lru:N)"));
            }
        }
    };
    let result = JoinSession::new(&t1, &t2)
        .config(JoinConfig {
            buffer,
            collect_pairs: false,
            ..JoinConfig::default()
        })
        .run()
        .expect("ungoverned join cannot fail")
        .result;
    println!(
        "h1 = {}, h2 = {}, buffer = {buffer:?}",
        t1.height(),
        t2.height()
    );
    println!("node accesses NA = {}", result.na_total());
    println!("disk accesses DA = {}", result.da_total());
    println!("qualifying pairs = {}", result.pair_count);
    for (tree, stats) in [(1, &result.stats1), (2, &result.stats2)] {
        let by_level: Vec<String> = (0..=stats.max_level().unwrap_or(0))
            .map(|l| format!("L{}: {}/{}", l + 1, stats.na_at(l), stats.da_at(l)))
            .collect();
        println!("tree {tree} NA/DA by paper level: {}", by_level.join("  "));
    }
    Ok(())
}

// ------------------------------------------------------------ explain

fn cmd_explain(flags: &HashMap<String, String>) -> CliResult {
    // --datasets name:N:D,name:N:D[,...]
    let mut catalog = Catalog::<2>::new();
    let mut names = Vec::new();
    for spec in get(flags, "datasets")?.split(',') {
        let parts: Vec<&str> = spec.split(':').collect();
        let [name, n, d] = parts[..] else {
            return Err(format!("bad dataset spec {spec} (want name:N:D)"));
        };
        let n: u64 = n.parse().map_err(|e| format!("bad N in {spec}: {e}"))?;
        let d: f64 = d.parse().map_err(|e| format!("bad D in {spec}: {e}"))?;
        catalog.register(name, DatasetStats::new(n, d));
        names.push(name.to_string());
    }
    let mut query = JoinQuery::new(names);
    if let Some(sel) = flags.get("select") {
        // --select name:x0,y0,x1,y1
        let (name, coords) = sel
            .split_once(':')
            .ok_or_else(|| format!("bad --select {sel}"))?;
        let vals: Vec<f64> = coords
            .split(',')
            .map(|v| v.parse().map_err(|e| format!("bad --select {sel}: {e}")))
            .collect::<Result<_, String>>()?;
        let [x0, y0, x1, y1] = vals[..] else {
            return Err(format!("--select needs 4 coordinates, got {sel}"));
        };
        let window = Rect::new([x0, y0], [x1, y1]).map_err(|e| e.to_string())?;
        query = query.with_selection(name, window);
    }
    let planner = Planner::new(&catalog);
    let plans = planner.enumerate(&query).map_err(|e| e.to_string())?;
    println!("{} candidate plans; best first:\n", plans.len());
    for (i, plan) in plans.iter().take(4).enumerate() {
        println!("#{} {plan}", i + 1);
    }
    Ok(())
}
