//! Physical-plan execution: run the optimizer's chosen strategy against
//! real R-trees and count the actual page accesses.
//!
//! The optimizer crate deliberately stays pure (catalog statistics in,
//! costed plans out). This module closes the loop inside the facade
//! crate, where all the substrates meet: bind each base data set to a
//! built [`RTree`] plus its object table, walk the [`PlanNode`] tree,
//! and execute each operator with the same instrumentation the
//! experiments use — so a plan's *estimated* cost can be checked against
//! its *measured* cost (see `tests/plan_execution.rs`).
//!
//! Supported plan shapes: everything the planner emits for one- and
//! two-dataset queries (scans, index range selects, one join of any
//! algorithm, and filters above them). Deeper join chains return
//! [`ExecError::UnsupportedShape`] — the estimator prices them, but
//! executing them would need multi-column intermediate semantics this
//! reproduction does not model.

use crate::join::baselines::index_nested_loop_join;
use crate::optimizer::{JoinAlgorithm, PhysicalPlan, PlanNode};
use crate::prelude::*;
use sjcm_geom::Rect;
use std::collections::HashMap;

/// One base data set bound for execution: its index and its object
/// table, indexed by dense `ObjectId` (as produced by
/// [`crate::datagen::with_ids`]).
pub struct BoundDataset<'a, const N: usize> {
    /// The R-tree over the data set.
    pub tree: &'a RTree<N>,
    /// Object MBRs, position `i` holding the rect of `ObjectId(i)`.
    pub objects: &'a [Rect<N>],
}

/// Execution failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A plan referenced a data set that was never bound.
    UnboundDataset(String),
    /// The plan shape exceeds what the executor models.
    UnsupportedShape(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnboundDataset(d) => write!(f, "dataset {d} not bound"),
            ExecError::UnsupportedShape(s) => write!(f, "unsupported plan shape: {s}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// A materialized result: one column per participating base data set.
#[derive(Debug, Clone)]
pub struct ExecOutput<const N: usize> {
    /// Column names (base data set names), in row order.
    pub columns: Vec<String>,
    /// Result rows; each row has one `(rect, id)` per column.
    pub rows: Vec<Vec<(Rect<N>, ObjectId)>>,
    /// Page accesses actually performed (DA for SJ joins under path
    /// buffers, node accesses for index probes).
    pub io_cost: u64,
}

/// Executes physical plans against bound data sets.
pub struct PlanExecutor<'a, const N: usize> {
    bindings: HashMap<String, BoundDataset<'a, N>>,
}

impl<'a, const N: usize> PlanExecutor<'a, N> {
    /// Creates an executor with no bindings.
    pub fn new() -> Self {
        Self {
            bindings: HashMap::new(),
        }
    }

    /// Binds a base data set by name.
    pub fn bind(mut self, name: &str, tree: &'a RTree<N>, objects: &'a [Rect<N>]) -> Self {
        self.bindings
            .insert(name.to_string(), BoundDataset { tree, objects });
        self
    }

    /// Executes a costed plan.
    pub fn run(&self, plan: &PhysicalPlan<N>) -> Result<ExecOutput<N>, ExecError> {
        self.run_node(&plan.root)
    }

    fn bound(&self, name: &str) -> Result<&BoundDataset<'a, N>, ExecError> {
        self.bindings
            .get(name)
            .ok_or_else(|| ExecError::UnboundDataset(name.to_string()))
    }

    fn run_node(&self, node: &PlanNode<N>) -> Result<ExecOutput<N>, ExecError> {
        match node {
            PlanNode::IndexScan { dataset } => {
                let b = self.bound(dataset)?;
                let rows = b
                    .objects
                    .iter()
                    .enumerate()
                    .map(|(i, r)| vec![(*r, ObjectId(i as u32))])
                    .collect();
                Ok(ExecOutput {
                    columns: vec![dataset.clone()],
                    rows,
                    io_cost: 0,
                })
            }
            PlanNode::IndexRangeSelect { dataset, window } => {
                let b = self.bound(dataset)?;
                let (hits, visits) = b.tree.query_window_counting(window);
                let rows = hits
                    .into_iter()
                    .map(|id| vec![(b.objects[id.0 as usize], id)])
                    .collect();
                Ok(ExecOutput {
                    columns: vec![dataset.clone()],
                    rows,
                    io_cost: visits.iter().sum(),
                })
            }
            PlanNode::Filter {
                input,
                dataset,
                window,
            } => {
                let mut out = self.run_node(input)?;
                let col = out
                    .columns
                    .iter()
                    .position(|c| c == dataset)
                    .ok_or_else(|| {
                        ExecError::UnsupportedShape(format!(
                            "filter on {dataset} but columns are {:?}",
                            out.columns
                        ))
                    })?;
                out.rows.retain(|row| row[col].0.intersects(window));
                Ok(out)
            }
            PlanNode::Join {
                data,
                query,
                algorithm,
            } => self.run_join(data, query, *algorithm),
        }
    }

    fn run_join(
        &self,
        data: &PlanNode<N>,
        query: &PlanNode<N>,
        algorithm: JoinAlgorithm,
    ) -> Result<ExecOutput<N>, ExecError> {
        match algorithm {
            JoinAlgorithm::SynchronizedTraversal => {
                let (d_name, q_name) = match (data, query) {
                    (PlanNode::IndexScan { dataset: d }, PlanNode::IndexScan { dataset: q }) => {
                        (d, q)
                    }
                    _ => {
                        return Err(ExecError::UnsupportedShape(
                            "SJ requires two base index scans".into(),
                        ))
                    }
                };
                let db = self.bound(d_name)?;
                let qb = self.bound(q_name)?;
                let result = spatial_join_with(
                    db.tree,
                    qb.tree,
                    JoinConfig {
                        buffer: BufferPolicy::Path,
                        ..JoinConfig::default()
                    },
                );
                let rows = result
                    .pairs
                    .iter()
                    .map(|&(a, b)| {
                        vec![(db.objects[a.0 as usize], a), (qb.objects[b.0 as usize], b)]
                    })
                    .collect();
                Ok(ExecOutput {
                    columns: vec![d_name.clone(), q_name.clone()],
                    rows,
                    io_cost: result.da_total(),
                })
            }
            JoinAlgorithm::IndexNestedLoop => {
                // One side must be a base scan; the other is any
                // single-column subplan.
                let (scan_side, probe_side, scan_first) = match (data, query) {
                    (PlanNode::IndexScan { dataset }, other) => (dataset, other, true),
                    (other, PlanNode::IndexScan { dataset }) => (dataset, other, false),
                    _ => {
                        return Err(ExecError::UnsupportedShape(
                            "INL requires one base index scan".into(),
                        ))
                    }
                };
                let sb = self.bound(scan_side)?;
                let probe = self.run_node(probe_side)?;
                if probe.columns.len() != 1 {
                    return Err(ExecError::UnsupportedShape(
                        "INL probe side must be single-column".into(),
                    ));
                }
                let probes: Vec<(Rect<N>, ObjectId)> =
                    probe.rows.iter().map(|row| row[0]).collect();
                let rect_of: HashMap<ObjectId, Rect<N>> =
                    probes.iter().map(|&(r, id)| (id, r)).collect();
                let inl = index_nested_loop_join(sb.tree, &probes);
                let rows = inl
                    .pairs
                    .iter()
                    .map(|&(indexed, probe_id)| {
                        let indexed_cell = (sb.objects[indexed.0 as usize], indexed);
                        let probe_cell = (rect_of[&probe_id], probe_id);
                        if scan_first {
                            vec![indexed_cell, probe_cell]
                        } else {
                            vec![probe_cell, indexed_cell]
                        }
                    })
                    .collect();
                let columns = if scan_first {
                    vec![scan_side.clone(), probe.columns[0].clone()]
                } else {
                    vec![probe.columns[0].clone(), scan_side.clone()]
                };
                Ok(ExecOutput {
                    columns,
                    rows,
                    io_cost: probe.io_cost + inl.node_accesses,
                })
            }
            JoinAlgorithm::NestedLoop => {
                let left = self.run_node(data)?;
                let right = self.run_node(query)?;
                if left.columns.len() != 1 || right.columns.len() != 1 {
                    return Err(ExecError::UnsupportedShape(
                        "NL inputs must be single-column".into(),
                    ));
                }
                // Block-nested-loop page cost over the materialized
                // inputs (pages at the paper's average fill).
                let fanout = ModelConfig::paper(N).fanout();
                let pages = |rows: usize| (rows as f64 / fanout).ceil().max(1.0) as u64;
                let io = pages(left.rows.len()) + pages(left.rows.len()) * pages(right.rows.len());
                let mut rows = Vec::new();
                for l in &left.rows {
                    for r in &right.rows {
                        if l[0].0.intersects(&r[0].0) {
                            rows.push(vec![l[0], r[0]]);
                        }
                    }
                }
                Ok(ExecOutput {
                    columns: vec![left.columns[0].clone(), right.columns[0].clone()],
                    rows,
                    io_cost: left.io_cost + right.io_cost + io,
                })
            }
        }
    }
}

impl<const N: usize> Default for PlanExecutor<'_, N> {
    fn default() -> Self {
        Self::new()
    }
}
