//! Physical-plan execution: run the optimizer's chosen strategy against
//! real R-trees and count the actual page accesses.
//!
//! The optimizer crate deliberately stays pure (catalog statistics in,
//! costed plans out). This module closes the loop inside the facade
//! crate, where all the substrates meet: bind each base data set to a
//! built [`RTree`] plus its object table, walk the [`PlanNode`] tree,
//! and execute each operator with the same instrumentation the
//! experiments use — so a plan's *estimated* cost can be checked against
//! its *measured* cost (see `tests/plan_execution.rs`).
//!
//! Accounting is dimensionally explicit: every operator reports its
//! logical node accesses (**NA**) and its buffer misses (**DA**)
//! separately, and [`PlanExecutor::run_measured`] additionally returns a
//! per-operator [`OpMeasurement`] stream — the raw material for the
//! EXPLAIN ANALYZE subsystem in [`crate::explain`]. The SJ operator runs
//! through the production [`sjcm_join::JoinSession`] engine (one worker
//! by default — identical counters to the sequential executor), so
//! whatever instrumentation production carries, plan execution carries
//! too.
//!
//! Supported plan shapes: everything the planner emits for one- and
//! two-dataset queries (scans, index range selects, one join of any
//! algorithm — including SJ with a window selection pushed below it,
//! executed as a full-tree traversal plus a residual filter on the
//! selected side — and filters above them). Deeper join chains return
//! [`ExecError::UnsupportedShape`] — the estimator prices them, but
//! executing them would need multi-column intermediate semantics this
//! reproduction does not model.

use crate::join::baselines::index_nested_loop_join;
use crate::join::{Governor, JoinSession, Scheduler};
use crate::optimizer::{JoinAlgorithm, PhysicalPlan, PlanNode};
use crate::prelude::*;
use sjcm_geom::Rect;
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// One base data set bound for execution: its index and its object
/// table, indexed by dense `ObjectId` (as produced by
/// [`crate::datagen::with_ids`]).
pub struct BoundDataset<'a, const N: usize> {
    /// The R-tree over the data set.
    pub tree: &'a RTree<N>,
    /// Object MBRs, position `i` holding the rect of `ObjectId(i)`.
    pub objects: &'a [Rect<N>],
}

/// Execution failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A plan referenced a data set that was never bound.
    UnboundDataset(String),
    /// The plan shape exceeds what the executor models.
    UnsupportedShape(String),
    /// The query governor stopped the run (admission rejection or a
    /// memory-budget denial); the payload is the governor's message.
    Governed(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnboundDataset(d) => write!(f, "dataset {d} not bound"),
            ExecError::UnsupportedShape(s) => write!(f, "unsupported plan shape: {s}"),
            ExecError::Governed(msg) => write!(f, "query governed: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// A materialized result: one column per participating base data set.
#[derive(Debug, Clone)]
pub struct ExecOutput<const N: usize> {
    /// Column names (base data set names), in row order.
    pub columns: Vec<String>,
    /// Result rows; each row has one `(rect, id)` per column.
    pub rows: Vec<Vec<(Rect<N>, ObjectId)>>,
    /// Logical node accesses (NA) summed over the subtree's operators.
    pub na: u64,
    /// Buffer misses (DA) summed over the subtree's operators. Equals
    /// `na` for unbuffered probes; strictly smaller for SJ runs under
    /// the path buffer.
    pub da: u64,
    /// Model-comparable I/O summed over the subtree: per operator, DA
    /// for SJ under the path buffer (what Eq 10/12 predicts), NA for
    /// index probes (what Eq 1 predicts), simulated page reads for NL —
    /// the measured counterpart of `Estimate::cost`.
    pub cost_io: u64,
}

/// Measured counters of one operator alone (children excluded) — the
/// measured counterpart of `Estimate::own_cost`, tagged with the
/// operator's position in the plan tree.
#[derive(Debug, Clone)]
pub struct OpMeasurement {
    /// Child indices from the root (`[]` = root; for a join, `[0]` is
    /// the data/R1 side and `[1]` the query/R2 side; a filter's input
    /// is `[0]`).
    pub path: Vec<usize>,
    /// Operator label, e.g. `IndexScan(rivers)` or `Join[SJ]`.
    pub label: String,
    /// Logical node accesses performed by this operator.
    pub na: u64,
    /// Buffer misses charged to this operator.
    pub da: u64,
    /// Model-comparable I/O of this operator (see
    /// [`ExecOutput::cost_io`]).
    pub cost_io: u64,
    /// Output rows produced.
    pub rows: u64,
    /// Wall-clock span of the operator, children excluded, in
    /// microseconds.
    pub wall_us: u64,
}

/// One executed SJ input with a pushed-down selection: the surviving
/// ids (residual filter) and the probe's accesses.
struct SjSide {
    selected: HashSet<ObjectId>,
    na: u64,
}

/// Executes physical plans against bound data sets.
pub struct PlanExecutor<'a, const N: usize> {
    bindings: HashMap<String, BoundDataset<'a, N>>,
    threads: usize,
    governor: Governor,
}

impl<'a, const N: usize> PlanExecutor<'a, N> {
    /// Creates an executor with no bindings, running joins on one
    /// worker (the sequential fallback of the parallel entry point —
    /// counters are identical to the sequential executor) under an
    /// unlimited governor.
    pub fn new() -> Self {
        Self {
            bindings: HashMap::new(),
            threads: 1,
            governor: Governor::unlimited(),
        }
    }

    /// Binds a base data set by name.
    pub fn bind(mut self, name: &str, tree: &'a RTree<N>, objects: &'a [Rect<N>]) -> Self {
        self.bindings
            .insert(name.to_string(), BoundDataset { tree, objects });
        self
    }

    /// Sets the worker count for SJ operators (clamped to ≥ 1). NA/DA
    /// totals are thread-count-invariant by construction.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Governs the SJ operators of every subsequent run: admission
    /// control, cooperative deadlines and memory budgets apply to the
    /// join traversals (index probes and NL fallbacks stay ungoverned —
    /// their cost is bounded by construction). A governor holds one
    /// query's decision log, so hand a fresh one to each run whose
    /// events you want to stream. The default is [`Governor::unlimited`]
    /// — byte-identical to the ungoverned executor.
    pub fn with_governor(mut self, governor: Governor) -> Self {
        self.governor = governor;
        self
    }

    /// Looks up a bound data set.
    pub fn binding(&self, name: &str) -> Option<&BoundDataset<'a, N>> {
        self.bindings.get(name)
    }

    /// Executes a costed plan.
    pub fn run(&self, plan: &PhysicalPlan<N>) -> Result<ExecOutput<N>, ExecError> {
        Ok(self.run_measured(plan)?.0)
    }

    /// Executes a costed plan, also returning one [`OpMeasurement`] per
    /// operator (pre-order: an operator precedes its children).
    pub fn run_measured(
        &self,
        plan: &PhysicalPlan<N>,
    ) -> Result<(ExecOutput<N>, Vec<OpMeasurement>), ExecError> {
        let mut ops = Vec::new();
        let mut path = Vec::new();
        let out = self.exec_node(&plan.root, &mut path, &mut ops)?;
        Ok((out, ops))
    }

    fn bound(&self, name: &str) -> Result<&BoundDataset<'a, N>, ExecError> {
        self.bindings
            .get(name)
            .ok_or_else(|| ExecError::UnboundDataset(name.to_string()))
    }

    /// Records one operator's own counters at the current path slot
    /// (reserved before children ran, so the stream stays pre-order).
    #[allow(clippy::too_many_arguments)]
    fn record(
        ops: &mut [OpMeasurement],
        slot: usize,
        path: &[usize],
        label: String,
        na: u64,
        da: u64,
        cost_io: u64,
        rows: u64,
        wall_us: u64,
    ) {
        ops[slot] = OpMeasurement {
            path: path.to_vec(),
            label,
            na,
            da,
            cost_io,
            rows,
            wall_us,
        };
    }

    fn exec_node(
        &self,
        node: &PlanNode<N>,
        path: &mut Vec<usize>,
        ops: &mut Vec<OpMeasurement>,
    ) -> Result<ExecOutput<N>, ExecError> {
        // Reserve this operator's slot before recursing so the stream
        // is pre-order even though counters land after children run.
        let slot = ops.len();
        ops.push(OpMeasurement {
            path: path.clone(),
            label: String::new(),
            na: 0,
            da: 0,
            cost_io: 0,
            rows: 0,
            wall_us: 0,
        });
        match node {
            PlanNode::IndexScan { dataset } => {
                let start = Instant::now();
                let b = self.bound(dataset)?;
                let rows: Vec<Vec<(Rect<N>, ObjectId)>> = b
                    .objects
                    .iter()
                    .enumerate()
                    .map(|(i, r)| vec![(*r, ObjectId(i as u32))])
                    .collect();
                Self::record(
                    ops,
                    slot,
                    path,
                    format!("IndexScan({dataset})"),
                    0,
                    0,
                    0,
                    rows.len() as u64,
                    start.elapsed().as_micros() as u64,
                );
                Ok(ExecOutput {
                    columns: vec![dataset.clone()],
                    rows,
                    na: 0,
                    da: 0,
                    cost_io: 0,
                })
            }
            PlanNode::IndexRangeSelect { dataset, window } => {
                let start = Instant::now();
                let b = self.bound(dataset)?;
                let (hits, visits) = b.tree.query_window_counting(window);
                let rows: Vec<Vec<(Rect<N>, ObjectId)>> = hits
                    .into_iter()
                    .map(|id| vec![(b.objects[id.0 as usize], id)])
                    .collect();
                // The probe runs unbuffered: every logical access reads
                // a page, so NA and DA coincide; Eq 1 predicts the NA.
                let na: u64 = visits.iter().sum();
                Self::record(
                    ops,
                    slot,
                    path,
                    format!("IndexRangeSelect({dataset})"),
                    na,
                    na,
                    na,
                    rows.len() as u64,
                    start.elapsed().as_micros() as u64,
                );
                Ok(ExecOutput {
                    columns: vec![dataset.clone()],
                    rows,
                    na,
                    da: na,
                    cost_io: na,
                })
            }
            PlanNode::Filter {
                input,
                dataset,
                window,
            } => {
                path.push(0);
                let mut out = self.exec_node(input, path, ops)?;
                path.pop();
                let start = Instant::now();
                let col = out
                    .columns
                    .iter()
                    .position(|c| c == dataset)
                    .ok_or_else(|| {
                        ExecError::UnsupportedShape(format!(
                            "filter on {dataset} but columns are {:?}",
                            out.columns
                        ))
                    })?;
                out.rows.retain(|row| row[col].0.intersects(window));
                Self::record(
                    ops,
                    slot,
                    path,
                    format!("Filter({dataset})"),
                    0,
                    0,
                    0,
                    out.rows.len() as u64,
                    start.elapsed().as_micros() as u64,
                );
                Ok(out)
            }
            PlanNode::Join {
                data,
                query,
                algorithm,
            } => self.exec_join(data, query, *algorithm, slot, path, ops),
        }
    }

    /// The base index behind an SJ input: a bare scan (no residual
    /// window) or a pushed-down range select (the window becomes a
    /// residual filter on the traversal output).
    fn sj_input(node: &PlanNode<N>) -> Option<(&String, Option<&Rect<N>>)> {
        match node {
            PlanNode::IndexScan { dataset } => Some((dataset, None)),
            PlanNode::IndexRangeSelect { dataset, window } => Some((dataset, Some(window))),
            _ => None,
        }
    }

    /// Runs one SJ input. A pushed-down range select executes for real
    /// (its accesses are the Eq 1 cost the plan carries) and returns
    /// the ids the residual filter keeps; a bare scan records a
    /// zero-cost measurement and imposes no filter.
    fn sj_side(
        &self,
        node: &PlanNode<N>,
        child: usize,
        path: &mut Vec<usize>,
        ops: &mut Vec<OpMeasurement>,
    ) -> Result<Option<SjSide>, ExecError> {
        match node {
            PlanNode::IndexScan { dataset } => {
                let b = self.bound(dataset)?;
                path.push(child);
                ops.push(OpMeasurement {
                    path: path.clone(),
                    label: format!("IndexScan({dataset})"),
                    na: 0,
                    da: 0,
                    cost_io: 0,
                    rows: b.objects.len() as u64,
                    wall_us: 0,
                });
                path.pop();
                Ok(None)
            }
            _ => {
                path.push(child);
                let out = self.exec_node(node, path, ops)?;
                path.pop();
                Ok(Some(SjSide {
                    selected: out.rows.iter().map(|row| row[0].1).collect(),
                    na: out.na,
                }))
            }
        }
    }

    fn exec_join(
        &self,
        data: &PlanNode<N>,
        query: &PlanNode<N>,
        algorithm: JoinAlgorithm,
        slot: usize,
        path: &mut Vec<usize>,
        ops: &mut Vec<OpMeasurement>,
    ) -> Result<ExecOutput<N>, ExecError> {
        match algorithm {
            JoinAlgorithm::SynchronizedTraversal => {
                let (Some((d_name, _)), Some((q_name, _))) =
                    (Self::sj_input(data), Self::sj_input(query))
                else {
                    return Err(ExecError::UnsupportedShape(
                        "SJ requires two base index inputs".into(),
                    ));
                };
                // Children run for real: a pushed selection probes its
                // index (counted accesses) and yields the residual id
                // set; a bare scan is free and yields no filter.
                let d_side = self.sj_side(data, 0, path, ops)?;
                let q_side = self.sj_side(query, 1, path, ops)?;
                let start = Instant::now();
                let db = self.bound(d_name)?;
                let qb = self.bound(q_name)?;
                // SJ traverses the *full* base trees through the
                // production session API; pushed selections then drop
                // pairs outside their windows (a residual in-memory
                // filter — no extra I/O beyond the probes already
                // counted on the children). With a governor armed, an
                // admission rejection or memory-budget denial becomes
                // `ExecError::Governed`, a deadline expiry a degraded
                // (partial, priced) result.
                let join_config = JoinConfig {
                    buffer: BufferPolicy::Path,
                    ..JoinConfig::default()
                };
                let result = JoinSession::new(db.tree, qb.tree)
                    .config(join_config)
                    .scheduler(Scheduler::CostGuided {
                        threads: self.threads,
                    })
                    .govern(&self.governor)
                    .run()
                    .map_err(|e| ExecError::Governed(e.to_string()))?
                    .result;
                let keep = |sel: &Option<SjSide>, id: ObjectId| match sel {
                    Some(side) => side.selected.contains(&id),
                    None => true,
                };
                let rows: Vec<Vec<(Rect<N>, ObjectId)>> = result
                    .pairs
                    .iter()
                    .filter(|&&(a, b)| keep(&d_side, a) && keep(&q_side, b))
                    .map(|&(a, b)| {
                        vec![(db.objects[a.0 as usize], a), (qb.objects[b.0 as usize], b)]
                    })
                    .collect();
                let (na, da) = (result.na_total(), result.da_total());
                let side_io = |s: &Option<SjSide>| s.as_ref().map_or(0, |side| side.na);
                let child_io = side_io(&d_side) + side_io(&q_side);
                Self::record(
                    ops,
                    slot,
                    path,
                    "Join[SJ]".to_string(),
                    na,
                    da,
                    da,
                    rows.len() as u64,
                    start.elapsed().as_micros() as u64,
                );
                Ok(ExecOutput {
                    columns: vec![d_name.clone(), q_name.clone()],
                    rows,
                    na: child_io + na,
                    da: child_io + da,
                    cost_io: child_io + da,
                })
            }
            JoinAlgorithm::IndexNestedLoop => {
                // One side must be a base scan; the other is any
                // single-column subplan.
                let (scan_side, probe_side, probe_child, scan_first) = match (data, query) {
                    (PlanNode::IndexScan { dataset }, other) => (dataset, other, 1, true),
                    (other, PlanNode::IndexScan { dataset }) => (dataset, other, 0, false),
                    _ => {
                        return Err(ExecError::UnsupportedShape(
                            "INL requires one base index scan".into(),
                        ))
                    }
                };
                let sb = self.bound(scan_side)?;
                path.push(1 - probe_child);
                ops.push(OpMeasurement {
                    path: path.clone(),
                    label: format!("IndexScan({scan_side})"),
                    na: 0,
                    da: 0,
                    cost_io: 0,
                    rows: sb.objects.len() as u64,
                    wall_us: 0,
                });
                path.pop();
                path.push(probe_child);
                let probe = self.exec_node(probe_side, path, ops)?;
                path.pop();
                let start = Instant::now();
                if probe.columns.len() != 1 {
                    return Err(ExecError::UnsupportedShape(
                        "INL probe side must be single-column".into(),
                    ));
                }
                let probes: Vec<(Rect<N>, ObjectId)> =
                    probe.rows.iter().map(|row| row[0]).collect();
                let rect_of: HashMap<ObjectId, Rect<N>> =
                    probes.iter().map(|&(r, id)| (id, r)).collect();
                let inl = index_nested_loop_join(sb.tree, &probes);
                let rows: Vec<Vec<(Rect<N>, ObjectId)>> = inl
                    .pairs
                    .iter()
                    .map(|&(indexed, probe_id)| {
                        let indexed_cell = (sb.objects[indexed.0 as usize], indexed);
                        let probe_cell = (rect_of[&probe_id], probe_id);
                        if scan_first {
                            vec![indexed_cell, probe_cell]
                        } else {
                            vec![probe_cell, indexed_cell]
                        }
                    })
                    .collect();
                let columns = if scan_first {
                    vec![scan_side.clone(), probe.columns[0].clone()]
                } else {
                    vec![probe.columns[0].clone(), scan_side.clone()]
                };
                // Unbuffered probes: NA = DA; Eq 1 × outer predicts NA.
                let na = inl.node_accesses;
                Self::record(
                    ops,
                    slot,
                    path,
                    "Join[INL]".to_string(),
                    na,
                    na,
                    na,
                    rows.len() as u64,
                    start.elapsed().as_micros() as u64,
                );
                Ok(ExecOutput {
                    columns,
                    rows,
                    na: probe.na + na,
                    da: probe.da + na,
                    cost_io: probe.cost_io + na,
                })
            }
            JoinAlgorithm::NestedLoop => {
                path.push(0);
                let left = self.exec_node(data, path, ops)?;
                path.pop();
                path.push(1);
                let right = self.exec_node(query, path, ops)?;
                path.pop();
                let start = Instant::now();
                if left.columns.len() != 1 || right.columns.len() != 1 {
                    return Err(ExecError::UnsupportedShape(
                        "NL inputs must be single-column".into(),
                    ));
                }
                // Block-nested-loop page cost over the materialized
                // inputs (pages at the paper's average fill).
                let fanout = ModelConfig::paper(N).fanout();
                let pages = |rows: usize| (rows as f64 / fanout).ceil().max(1.0) as u64;
                let io = pages(left.rows.len()) + pages(left.rows.len()) * pages(right.rows.len());
                let mut rows = Vec::new();
                for l in &left.rows {
                    for r in &right.rows {
                        if l[0].0.intersects(&r[0].0) {
                            rows.push(vec![l[0], r[0]]);
                        }
                    }
                }
                Self::record(
                    ops,
                    slot,
                    path,
                    "Join[NL]".to_string(),
                    io,
                    io,
                    io,
                    rows.len() as u64,
                    start.elapsed().as_micros() as u64,
                );
                Ok(ExecOutput {
                    columns: vec![left.columns[0].clone(), right.columns[0].clone()],
                    rows,
                    na: left.na + right.na + io,
                    da: left.da + right.da + io,
                    cost_io: left.cost_io + right.cost_io + io,
                })
            }
        }
    }
}

impl<const N: usize> Default for PlanExecutor<'_, N> {
    fn default() -> Self {
        Self::new()
    }
}
