//! `sjcm` — **S**patial **J**oin **C**ost **M**odels.
//!
//! A production-quality Rust reproduction of *Theodoridis, Stefanakis &
//! Sellis, "Cost Models for Join Queries in Spatial Databases"*
//! (ICDE 1998): analytical formulas that predict the I/O cost of an
//! R-tree spatial join from primitive data properties only, together
//! with every substrate needed to validate them — an R\*-tree built from
//! scratch, a paged-storage simulator with path/LRU buffer managers, an
//! instrumented synchronized-traversal join executor, seeded data
//! generators, and a small cost-based query optimizer.
//!
//! This facade crate re-exports the workspace's public API under one
//! roof; each subsystem is its own crate:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`geom`] | `sjcm-geom` | points, rectangles, curves, density |
//! | [`storage`] | `sjcm-storage` | pages, node layout, buffers, counters |
//! | [`rtree`] | `sjcm-rtree` | R\*-tree, bulk loading, stats, persistence |
//! | [`join`] | `sjcm-join` | SJ executor, baselines, parallel join |
//! | [`model`] | `sjcm-core` | **the paper's cost models** (Eqs 1–12 + extensions) |
//! | [`datagen`] | `sjcm-datagen` | uniform / skewed / TIGER-like generators |
//! | [`optimizer`] | `sjcm-optimizer` | cost-based spatial query optimizer |
//! | [`obs`] | `sjcm-obs` | spans, metrics registry, model-drift monitor |
//!
//! # Quickstart
//!
//! ```
//! use sjcm::prelude::*;
//!
//! // Two synthetic data sets, as in the paper's evaluation.
//! let r1 = sjcm::datagen::uniform::generate::<2>(
//!     sjcm::datagen::uniform::UniformConfig::new(4_000, 0.3, 1));
//! let r2 = sjcm::datagen::uniform::generate::<2>(
//!     sjcm::datagen::uniform::UniformConfig::new(2_000, 0.3, 2));
//!
//! // Predict the join cost from (N, D) alone…
//! let cfg = ModelConfig::paper(2);
//! let p1 = TreeParams::<2>::from_data(DataProfile::new(4_000, 0.3), &cfg);
//! let p2 = TreeParams::<2>::from_data(DataProfile::new(2_000, 0.3), &cfg);
//! let predicted_na = sjcm::model::join::join_cost_na(&p1, &p2);
//!
//! // …then build the indexes, run the join, and compare.
//! let mut t1 = RTree::<2>::new(RTreeConfig::paper(2));
//! for (r, id) in sjcm::datagen::with_ids(r1) {
//!     t1.insert(r, ObjectId(id));
//! }
//! let mut t2 = RTree::<2>::new(RTreeConfig::paper(2));
//! for (r, id) in sjcm::datagen::with_ids(r2) {
//!     t2.insert(r, ObjectId(id));
//! }
//! let result = JoinSession::new(&t1, &t2)
//!     .run()
//!     .expect("ungoverned join cannot fail")
//!     .result;
//! assert!(predicted_na > 0.0);
//! assert!(result.na_total() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod explain;
pub mod json;

pub use sjcm_core as model;
pub use sjcm_datagen as datagen;
pub use sjcm_geom as geom;
pub use sjcm_join as join;
pub use sjcm_obs as obs;
pub use sjcm_optimizer as optimizer;
pub use sjcm_rtree as rtree;
pub use sjcm_storage as storage;

/// The most common imports in one place.
pub mod prelude {
    pub use sjcm_core::{DataProfile, DensitySurface, ModelConfig, SpatialOperator, TreeParams};
    pub use sjcm_geom::{Point, Rect};
    #[allow(deprecated)] // legacy wrappers stay importable through the prelude
    pub use sjcm_join::{spatial_join, spatial_join_with};
    pub use sjcm_join::{
        BufferPolicy, JoinConfig, JoinResultSet, JoinSession, PbsmSession, Scheduler,
    };
    pub use sjcm_rtree::{BulkLoad, ObjectId, RTree, RTreeConfig};
    pub use sjcm_storage::{AccessStats, InMemoryPageStore, PageStore};
}
