//! Minimal JSON reading/writing for the CLI's on-disk artifacts.
//!
//! The workspace is built in an offline environment, so instead of
//! `serde_json` the two JSON formats the `sjcm` binary needs — rectangle
//! datasets (`[[[lo…],[hi…]], …]`) and tree metadata objects — are handled
//! by this small self-contained module: a [`Value`] tree, a recursive
//! descent parser, and a compact writer. The wire formats are unchanged
//! from the serde-based implementation, so files written by older builds
//! still load.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64` (exact for integers up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, with key order preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => write!(f, "{n}"),
            Value::Str(s) => write_escaped(f, s),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Parses a JSON document. Returns an error message on malformed input.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Value::Num),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed for this CLI's
                        // artifacts; map lone surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_rect_dataset_format() {
        let text = "[[[0.1,0.2],[0.3,0.4]],[[0,0],[1,1]]]";
        let v = parse(text).unwrap();
        let rects = v.as_arr().unwrap();
        assert_eq!(rects.len(), 2);
        let lo = rects[0].as_arr().unwrap()[0].as_arr().unwrap();
        assert_eq!(lo[0].as_f64(), Some(0.1));
        assert_eq!(v.to_string(), text);
    }

    #[test]
    fn roundtrip_meta_object() {
        let v = Value::Obj(vec![
            ("root".into(), Value::Num(7.0)),
            ("len".into(), Value::Num(100.0)),
        ]);
        let text = v.to_string();
        let back = parse(&text).unwrap();
        assert_eq!(back.get("root").unwrap().as_u64(), Some(7));
        assert_eq!(back.get("len").unwrap().as_u64(), Some(100));
        assert_eq!(back.get("missing"), None);
    }

    #[test]
    fn parses_strings_escapes_and_rejects_garbage() {
        assert_eq!(
            parse("\"a\\n\\\"b\\u0041\"").unwrap(),
            Value::Str("a\n\"bA".into())
        );
        assert_eq!(parse("  null ").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert!(parse("[1,").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("NaN").is_err());
    }

    #[test]
    fn float_display_round_trips() {
        let v = Value::Num(0.123456789012345);
        let back = parse(&v.to_string()).unwrap();
        assert_eq!(back.as_f64(), Some(0.123456789012345));
    }
}
